// Software model of the paper's Algorithm 2: in-memory bit-parallel modular
// multiplication (interleaved Montgomery kept in carry-save form).
//
// This model is the bridge between the mathematical specification
// (interleaved_montgomery) and the in-SRAM microcode: it performs exactly
// the bitwise operations the SRAM executes — half-adder {AND, XOR} pairs,
// OR carry merges, and 1-bit shifts — and records the two structural
// observations the paper relies on:
//
//   Observation 1: the MSB of Carry is 0 at every `Carry << 1` (line 7),
//   Observation 2: the LSB of s1 is 0 at every `s1 >> 1` (line 13),
//
// which together are what let the whole computation fit in n columns.  The
// model flags any violation so the tests can map the (M, k) envelope where
// the claims hold (they hold whenever 2M < 2^k; see bp_modmul_envelope
// tests).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nttmath/modarith.h"
#include "nttmath/wide_uint.h"

namespace bpntt::math {

// One recorded iteration of Algorithm 2 (used by the Fig. 6 trace example).
struct bp_modmul_step {
  unsigned iteration = 0;
  bool a_bit = false;     // was the multiplier bit set (lines 5-10 executed)?
  u64 sum_after_add = 0;  // Sum after the P += a_i*B phase
  u64 carry_after_add = 0;
  bool m_selected = false;  // LSB(Sum) == 1, so m = M
  u64 sum_end = 0;          // Sum at iteration end (after P += m; P >>= 1)
  u64 carry_end = 0;
};

struct bp_modmul_result {
  u64 sum = 0;
  u64 carry = 0;  // final P = sum + 2*carry, congruent to A*B*R^-1 (mod M)
  u64 value = 0;  // resolved and conditionally reduced: canonical < M
  bool observation1_held = true;
  bool observation2_held = true;
  bool fits_in_k_bits = true;  // resolved P (< 2M) never exceeded 2^k
};

// Algorithm 2 with R = 2^k.  Requires odd M < 2^k, A,B < M, 2 <= k <= 63.
// `trace` (if non-null) receives one entry per iteration.
[[nodiscard]] bp_modmul_result bp_modmul(u64 a, u64 b, u64 m, unsigned k,
                                         std::vector<bp_modmul_step>* trace = nullptr);

// Wide-width variant (coefficients up to 4096 bits); same semantics.
struct bp_modmul_wide_result {
  wide_uint sum;
  wide_uint carry;
  wide_uint value;
  bool observation1_held = true;
  bool observation2_held = true;
};
[[nodiscard]] bp_modmul_wide_result bp_modmul_wide(const wide_uint& a, const wide_uint& b,
                                                   const wide_uint& m);

}  // namespace bpntt::math
