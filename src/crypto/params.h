// Lattice-crypto parameter sets the paper targets (§I): NIST PQC schemes
// (Kyber, Dilithium, Falcon) and homomorphic-encryption RNS primes at three
// BKZ.qsieve security levels.  Each set records the ring (n, q) and the
// BP-NTT tile width it needs (bitlen(2q): the carry-save datapath wants one
// spare bit — 14-bit PQC moduli ride in >= 14/16-bit tiles, matching
// Table I's "Coef. Bitwidth" column).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bpntt::crypto {

struct param_set {
  std::string name;
  std::uint64_t n = 0;       // polynomial order
  std::uint64_t q = 0;       // modulus
  bool negacyclic = true;    // X^n + 1 ring
  unsigned min_tile_bits = 0;

  [[nodiscard]] bool supports_full_ntt() const;  // 2n | q-1
};

// Big-modulus RLWE parameters in RNS form: the ciphertext modulus is the
// product of a chain of pairwise-coprime NTT-friendly word-sized primes,
// one NTT channel per limb (the FHE-style parameterization — word-sized
// primes are what the bit-parallel in-SRAM multiplier runs, the chain is
// what reaches the >100-bit moduli leveled schemes need).
struct rns_param_set {
  std::string name;
  std::uint64_t n = 0;                 // polynomial order
  std::vector<std::uint64_t> primes;   // limb moduli, ascending, distinct
  unsigned min_tile_bits = 0;          // tile width the widest limb needs

  // Sum of limb bit lengths: the modulus magnitude the chain reaches
  // (exact within one bit of bitlen(prod primes)).
  [[nodiscard]] unsigned modulus_bits() const;
};

// A big-modulus RLWE preset: `limbs` NTT-friendly primes of exactly
// `limb_bits` bits each, supporting negacyclic NTTs of size n.
[[nodiscard]] rns_param_set he_rns_level(unsigned limb_bits, unsigned limbs,
                                         std::uint64_t n = 1024);

// The RNS presets the benches/tests sweep: 2..4 limbs of 30-bit primes at
// n=1024 (60..120-bit ciphertext moduli — the leveled-BGV/BFV shape).
[[nodiscard]] std::vector<rns_param_set> all_rns_param_sets();

// The modulus chain of a leveled walk down from `top`: entry 0 is `top`
// itself, every subsequent entry drops the last limb prime — the basis a
// ciphertext lives in after each multiply-and-rescale — ending at the
// one-limb floor.  `top.primes.size()` entries in total, so a k-limb set
// supports k-1 leveled multiplications.  Throws std::invalid_argument on
// an empty chain.
[[nodiscard]] std::vector<rns_param_set> rns_level_chain(const rns_param_set& top);

// Leveled RNS-RLWE parameters: the ciphertext chain Q (`primes`) plus the
// key-switching extension chain P (`ks_primes`) hybrid relinearization
// lifts into for multiply-accumulate headroom, the plaintext modulus t the
// BGV-style modulus switch preserves, and the CBD noise width.  The
// evaluation key lives over the full union Q ∪ P, which makes it valid at
// every level of the chain — the fixed-operand shape the NTT-domain cache
// serves warm.
struct rns_rlwe_param_set {
  std::string name;
  std::uint64_t n = 0;                    // polynomial order
  std::vector<std::uint64_t> primes;      // ciphertext chain Q, ascending, distinct
  std::vector<std::uint64_t> ks_primes;   // extension chain P, coprime to Q
  std::uint64_t plain_modulus = 2;        // t: the message residue the switch preserves
  unsigned eta = 2;                       // centered-binomial noise width
  unsigned min_tile_bits = 0;             // tile width the widest limb (Q or P) needs

  // The ciphertext-chain view (Q only) — what a ciphertext's level walk
  // sweeps; feed it to rns_level_chain / runtime_options::for_rns_param_set.
  [[nodiscard]] rns_param_set level_set() const;
  // Sum of Q limb bit lengths (the ciphertext modulus magnitude).
  [[nodiscard]] unsigned modulus_bits() const;
  // Sum of P limb bit lengths (the relin accumulator's extra headroom).
  [[nodiscard]] unsigned ks_modulus_bits() const;
};

// A leveled RNS-RLWE preset: `limbs` ciphertext primes and `ks_limbs`
// (default: limbs, enough for ΠP >= ΠQ) extension primes, all NTT-friendly
// `limb_bits`-bit primes at order n drawn from one ascending search — the
// first `limbs` become Q, the rest P, so the extension product always
// clears the ciphertext modulus.  The result passes
// validate_keyswitch_headroom by construction.
[[nodiscard]] rns_rlwe_param_set he_rns_rlwe_level(unsigned limb_bits, unsigned limbs,
                                                   std::uint64_t n = 1024,
                                                   unsigned ks_limbs = 0);

// Key-switching headroom validation: every P prime must be an NTT-friendly
// odd prime at order n, coprime to the chain (no duplicates within P, no
// overlap with Q), the plaintext modulus coprime to every limb, and the
// extension product ΠP at least the ciphertext modulus ΠQ — the hybrid
// relinearization accumulator divides its noise by ΠP, so a short
// extension chain leaks tensor noise into the result.  Throws
// std::invalid_argument naming the first offending prime (or the exact
// bit shortfall) like first_k_ntt_primes does.
void validate_keyswitch_headroom(const rns_rlwe_param_set& p);

// NB: standardized Kyber (q=3329) uses an *incomplete* NTT — 3328 = 2^8*13
// caps full negacyclic transforms at n=128.  kyber() is still exercised at
// the modular-multiplication level and for n<=128 rings; kyber_compat()
// (the round-1 prime 7681) supports the full 256-point transform.
[[nodiscard]] param_set kyber();         // n=256,  q=3329  (incomplete NTT)
[[nodiscard]] param_set kyber_compat();  // n=256,  q=7681  (full NTT)
[[nodiscard]] param_set dilithium();    // n=256,  q=8380417
[[nodiscard]] param_set falcon512();    // n=512,  q=12289
[[nodiscard]] param_set falcon1024();   // n=1024, q=12289
// HE primes found at runtime: smallest b-bit prime with q ≡ 1 (mod 2n).
[[nodiscard]] param_set he_level(unsigned modulus_bits, std::uint64_t n = 1024);

[[nodiscard]] std::vector<param_set> all_param_sets();

// Smallest tile width with 2q < 2^k.
[[nodiscard]] unsigned required_tile_bits(std::uint64_t q);

}  // namespace bpntt::crypto
