#include "crypto/rlwe.h"

#include <stdexcept>
#include <utility>

#include "nttmath/modarith.h"

namespace bpntt::crypto {

rlwe_scheme::rlwe_scheme(param_set params, unsigned eta, polymul_fn mul)
    : params_(std::move(params)), eta_(eta), mul_(std::move(mul)) {
  if (!params_.supports_full_ntt()) {
    throw std::invalid_argument("rlwe_scheme: parameter set lacks a full negacyclic NTT");
  }
  if (!mul_) {
    tables_ = std::make_unique<math::ntt_tables>(params_.n, params_.q, /*negacyclic=*/true);
    mul_ = [this](std::span<const std::uint64_t> a, std::span<const std::uint64_t> b) {
      return math::polymul_ntt(a, b, *tables_);
    };
  }
}

rlwe_keygen_randomness rlwe_sample_keygen(const param_set& p, unsigned eta,
                                          common::xoshiro256ss& rng) {
  rlwe_keygen_randomness rnd;
  rnd.a = sample_uniform(p.n, p.q, rng);
  rnd.s = sample_cbd(p.n, p.q, eta, rng);
  rnd.e = sample_cbd(p.n, p.q, eta, rng);
  return rnd;
}

rlwe_encrypt_randomness rlwe_sample_encrypt(const param_set& p, unsigned eta,
                                            common::xoshiro256ss& rng) {
  rlwe_encrypt_randomness rnd;
  rnd.r = sample_cbd(p.n, p.q, eta, rng);
  rnd.e1 = sample_cbd(p.n, p.q, eta, rng);
  rnd.e2 = sample_cbd(p.n, p.q, eta, rng);
  return rnd;
}

rlwe_scheme::keypair rlwe_finish_keygen(const param_set& p, rlwe_keygen_randomness rnd,
                                        poly as) {
  rlwe_scheme::keypair kp;
  kp.pk.b = math::poly_add(as, rnd.e, p.q);
  kp.pk.a = std::move(rnd.a);
  kp.sk.s = std::move(rnd.s);
  return kp;
}

ciphertext rlwe_finish_encrypt(const param_set& p, const rlwe_encrypt_randomness& rnd,
                               std::span<const std::uint64_t> message, poly ar, poly br) {
  if (message.size() != p.n) throw std::invalid_argument("rlwe: message size");
  const std::uint64_t q = p.q;
  ciphertext ct;
  ct.u = math::poly_add(ar, rnd.e1, q);
  poly scaled(p.n);
  const std::uint64_t half = (q + 1) / 2;  // round(q/2)
  for (std::size_t i = 0; i < p.n; ++i) {
    scaled[i] = message[i] != 0 ? half : 0;
  }
  ct.v = math::poly_add(math::poly_add(br, rnd.e2, q), scaled, q);
  return ct;
}

poly rlwe_decrypt_from_product(const param_set& p, const ciphertext& ct, const poly& us) {
  const std::uint64_t q = p.q;
  poly m(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    const std::uint64_t d = math::sub_mod(ct.v[i], us[i], q);
    // Decision regions around 0 and q/2.
    const std::uint64_t quarter = q / 4;
    m[i] = (d > quarter && d < q - quarter) ? 1 : 0;
  }
  return m;
}

rlwe_scheme::keypair rlwe_scheme::keygen(common::xoshiro256ss& rng) const {
  auto rnd = rlwe_sample_keygen(params_, eta_, rng);
  poly as = mul_(rnd.a, rnd.s);
  return rlwe_finish_keygen(params_, std::move(rnd), std::move(as));
}

ciphertext rlwe_scheme::encrypt(const public_key& pk, std::span<const std::uint64_t> message,
                                common::xoshiro256ss& rng) const {
  const auto rnd = rlwe_sample_encrypt(params_, eta_, rng);
  poly ar = mul_(pk.a, rnd.r);
  poly br = mul_(pk.b, rnd.r);
  return rlwe_finish_encrypt(params_, rnd, message, std::move(ar), std::move(br));
}

poly rlwe_scheme::decrypt(const secret_key& sk, const ciphertext& ct) const {
  return rlwe_decrypt_from_product(params_, ct, mul_(ct.u, sk.s));
}

}  // namespace bpntt::crypto
