#include "crypto/rlwe.h"

#include <stdexcept>

#include "nttmath/modarith.h"

namespace bpntt::crypto {

rlwe_scheme::rlwe_scheme(param_set params, unsigned eta, polymul_fn mul)
    : params_(std::move(params)),
      eta_(eta),
      mul_(std::move(mul)),
      tables_(params_.n, params_.q, /*negacyclic=*/true) {
  if (!params_.supports_full_ntt()) {
    throw std::invalid_argument("rlwe_scheme: parameter set lacks a full negacyclic NTT");
  }
  if (!mul_) {
    mul_ = [this](std::span<const std::uint64_t> a, std::span<const std::uint64_t> b) {
      return math::polymul_ntt(a, b, tables_);
    };
  }
}

rlwe_scheme::keypair rlwe_scheme::keygen(common::xoshiro256ss& rng) const {
  keypair kp;
  kp.pk.a = sample_uniform(params_.n, params_.q, rng);
  kp.sk.s = sample_cbd(params_.n, params_.q, eta_, rng);
  const poly e = sample_cbd(params_.n, params_.q, eta_, rng);
  kp.pk.b = math::poly_add(mul_(kp.pk.a, kp.sk.s), e, params_.q);
  return kp;
}

ciphertext rlwe_scheme::encrypt(const public_key& pk, std::span<const std::uint64_t> message,
                                common::xoshiro256ss& rng) const {
  if (message.size() != params_.n) throw std::invalid_argument("rlwe: message size");
  const std::uint64_t q = params_.q;
  const poly r = sample_cbd(params_.n, q, eta_, rng);
  const poly e1 = sample_cbd(params_.n, q, eta_, rng);
  const poly e2 = sample_cbd(params_.n, q, eta_, rng);

  ciphertext ct;
  ct.u = math::poly_add(mul_(pk.a, r), e1, q);
  poly scaled(params_.n);
  const std::uint64_t half = (q + 1) / 2;  // round(q/2)
  for (std::size_t i = 0; i < params_.n; ++i) {
    scaled[i] = message[i] != 0 ? half : 0;
  }
  ct.v = math::poly_add(math::poly_add(mul_(pk.b, r), e2, q), scaled, q);
  return ct;
}

poly rlwe_scheme::decrypt(const secret_key& sk, const ciphertext& ct) const {
  const std::uint64_t q = params_.q;
  const poly us = mul_(ct.u, sk.s);
  poly m(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    const std::uint64_t d = math::sub_mod(ct.v[i], us[i], q);
    // Decision regions around 0 and q/2.
    const std::uint64_t quarter = q / 4;
    m[i] = (d > quarter && d < q - quarter) ? 1 : 0;
  }
  return m;
}

}  // namespace bpntt::crypto
