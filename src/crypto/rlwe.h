// Toy R-LWE public-key encryption (the LPR scheme, §II-A of the paper):
// the end-to-end workload whose polynomial products BP-NTT accelerates.
//
//   keygen:  a <- U(R_q); s, e <- CBD(eta);  pk = (a, b = a*s + e)
//   encrypt: r, e1, e2 <- CBD(eta);
//            u = a*r + e1;  v = b*r + e2 + round(q/2) * m,  m in {0,1}^n
//   decrypt: m' = round_to_bit(v - u*s)
//
// The ring product is pluggable so the same scheme can run on the golden
// CPU NTT or entirely on the in-SRAM engine (examples/rlwe_encrypt).
// This is a pedagogical scheme — no CCA transform, no compression — sized
// so decryption succeeds with overwhelming margin at the provided params.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "crypto/params.h"
#include "crypto/sampler.h"
#include "nttmath/ntt.h"
#include "nttmath/poly.h"

namespace bpntt::crypto {

using poly = std::vector<std::uint64_t>;
// Negacyclic ring product c = a * b mod (x^n + 1, q).
using polymul_fn = std::function<poly(std::span<const std::uint64_t>,
                                      std::span<const std::uint64_t>)>;

struct public_key {
  poly a;
  poly b;
};
struct secret_key {
  poly s;
};
struct ciphertext {
  poly u;
  poly v;
};

class rlwe_scheme {
 public:
  // `mul` defaults to the golden NTT product when null.
  rlwe_scheme(param_set params, unsigned eta = 2, polymul_fn mul = nullptr);

  [[nodiscard]] const param_set& params() const noexcept { return params_; }

  struct keypair {
    public_key pk;
    secret_key sk;
  };
  [[nodiscard]] keypair keygen(common::xoshiro256ss& rng) const;
  [[nodiscard]] ciphertext encrypt(const public_key& pk, std::span<const std::uint64_t> message,
                                   common::xoshiro256ss& rng) const;
  [[nodiscard]] poly decrypt(const secret_key& sk, const ciphertext& ct) const;

 private:
  param_set params_;
  unsigned eta_;
  polymul_fn mul_;
  math::ntt_tables tables_;
};

}  // namespace bpntt::crypto
