// Toy R-LWE public-key encryption (the LPR scheme, §II-A of the paper):
// the end-to-end workload whose polynomial products BP-NTT accelerates.
//
//   keygen:  a <- U(R_q); s, e <- CBD(eta);  pk = (a, b = a*s + e)
//   encrypt: r, e1, e2 <- CBD(eta);
//            u = a*r + e1;  v = b*r + e2 + round(q/2) * m,  m in {0,1}^n
//   decrypt: m' = round_to_bit(v - u*s)
//
// The ring product is pluggable so the same scheme can run on the golden
// CPU NTT or entirely on the in-SRAM engine (examples/rlwe_encrypt).
// This is a pedagogical scheme — no CCA transform, no compression — sized
// so decryption succeeds with overwhelming margin at the provided params.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "crypto/params.h"
#include "crypto/sampler.h"
#include "nttmath/ntt.h"
#include "nttmath/poly.h"

namespace bpntt::crypto {

using poly = std::vector<std::uint64_t>;
// Negacyclic ring product c = a * b mod (x^n + 1, q).
using polymul_fn = std::function<poly(std::span<const std::uint64_t>,
                                      std::span<const std::uint64_t>)>;

struct public_key {
  poly a;
  poly b;
};
struct secret_key {
  poly s;
};
struct ciphertext {
  poly u;
  poly v;
};

class rlwe_scheme {
 public:
  // `mul` defaults to the golden NTT product when null (the tables backing
  // the default are only built in that case).
  rlwe_scheme(param_set params, unsigned eta = 2, polymul_fn mul = nullptr);

  [[nodiscard]] const param_set& params() const noexcept { return params_; }

  struct keypair {
    public_key pk;
    secret_key sk;
  };
  [[nodiscard]] keypair keygen(common::xoshiro256ss& rng) const;
  [[nodiscard]] ciphertext encrypt(const public_key& pk, std::span<const std::uint64_t> message,
                                   common::xoshiro256ss& rng) const;
  [[nodiscard]] poly decrypt(const secret_key& sk, const ciphertext& ct) const;

 private:
  param_set params_;
  unsigned eta_;
  polymul_fn mul_;
  std::unique_ptr<math::ntt_tables> tables_;  // only for the default mul
};

// ---- Staged primitives -----------------------------------------------------
//
// The sampling and recombination halves of the scheme with the ring
// products factored out, so a batch scheduler can run the products of many
// independent key/encrypt/decrypt flows as one wide dispatch (the bpntt
// runtime batches all pending rlwe jobs stage by stage).  keygen / encrypt
// / decrypt above are compositions of these, so the staged path is
// bit-identical to the serial one for the same RNG stream.

// Everything keygen draws, in draw order: a <- U, s <- CBD, e <- CBD.
struct rlwe_keygen_randomness {
  poly a;
  poly s;
  poly e;
};
// Everything encrypt draws, in draw order: r, e1, e2 <- CBD.
struct rlwe_encrypt_randomness {
  poly r;
  poly e1;
  poly e2;
};

[[nodiscard]] rlwe_keygen_randomness rlwe_sample_keygen(const param_set& p, unsigned eta,
                                                        common::xoshiro256ss& rng);
[[nodiscard]] rlwe_encrypt_randomness rlwe_sample_encrypt(const param_set& p, unsigned eta,
                                                          common::xoshiro256ss& rng);
// `as` is the keygen product a*s: pk = (a, as + e), sk = s.
[[nodiscard]] rlwe_scheme::keypair rlwe_finish_keygen(const param_set& p,
                                                      rlwe_keygen_randomness rnd, poly as);
// `ar` / `br` are the encryption products a*r and b*r:
// u = ar + e1, v = br + e2 + round(q/2)*m.
[[nodiscard]] ciphertext rlwe_finish_encrypt(const param_set& p,
                                             const rlwe_encrypt_randomness& rnd,
                                             std::span<const std::uint64_t> message, poly ar,
                                             poly br);
// `us` is the decryption product u*s.
[[nodiscard]] poly rlwe_decrypt_from_product(const param_set& p, const ciphertext& ct,
                                             const poly& us);

}  // namespace bpntt::crypto
