#include "crypto/sampler.h"

#include <bit>

namespace bpntt::crypto {

std::vector<std::uint64_t> sample_uniform(std::uint64_t n, std::uint64_t q,
                                          common::xoshiro256ss& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& x : out) x = rng.below(q);
  return out;
}

std::vector<std::uint64_t> sample_cbd(std::uint64_t n, std::uint64_t q, unsigned eta,
                                      common::xoshiro256ss& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& x : out) {
    // popcount(eta random bits) - popcount(eta random bits), in [-eta, eta].
    const std::uint64_t mask = eta >= 64 ? ~0ULL : ((1ULL << eta) - 1);
    const int a = std::popcount(rng() & mask);
    const int b = std::popcount(rng() & mask);
    const int v = a - b;
    x = v >= 0 ? static_cast<std::uint64_t>(v) : q - static_cast<std::uint64_t>(-v);
  }
  return out;
}

std::vector<std::uint64_t> sample_message(std::uint64_t n, common::xoshiro256ss& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& x : out) x = rng.coin() ? 1 : 0;
  return out;
}

}  // namespace bpntt::crypto
