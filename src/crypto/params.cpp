#include "crypto/params.h"

#include <stdexcept>

#include "common/bitutil.h"
#include "nttmath/primes.h"

namespace bpntt::crypto {

bool param_set::supports_full_ntt() const { return q > 1 && (q - 1) % (2 * n) == 0; }

unsigned required_tile_bits(std::uint64_t q) { return common::bit_length(2 * q); }

namespace {
param_set make(std::string name, std::uint64_t n, std::uint64_t q) {
  param_set p;
  p.name = std::move(name);
  p.n = n;
  p.q = q;
  p.min_tile_bits = required_tile_bits(q);
  return p;
}
}  // namespace

param_set kyber() { return make("Kyber", 256, 3329); }
param_set kyber_compat() { return make("Kyber-r1", 256, 7681); }
param_set dilithium() { return make("Dilithium", 256, 8380417); }
param_set falcon512() { return make("Falcon-512", 512, 12289); }
param_set falcon1024() { return make("Falcon-1024", 1024, 12289); }

param_set he_level(unsigned modulus_bits, std::uint64_t n) {
  const std::uint64_t q = math::ntt_friendly_prime(modulus_bits, n, /*negacyclic=*/true);
  return make("HE-" + std::to_string(modulus_bits) + "b", n, q);
}

unsigned rns_param_set::modulus_bits() const {
  unsigned bits = 0;
  for (const std::uint64_t q : primes) bits += common::bit_length(q);
  return bits;
}

rns_param_set he_rns_level(unsigned limb_bits, unsigned limbs, std::uint64_t n) {
  rns_param_set p;
  p.primes = math::first_k_ntt_primes(limb_bits, n, limbs, /*negacyclic=*/true);
  p.n = n;
  p.name = "HE-RNS-" + std::to_string(limbs) + "x" + std::to_string(limb_bits) + "b";
  // Every limb rides the same tiles, so the width is set by the widest
  // prime in the chain (the last: the search is ascending).
  p.min_tile_bits = required_tile_bits(p.primes.back());
  return p;
}

std::vector<rns_param_set> all_rns_param_sets() {
  return {he_rns_level(30, 2), he_rns_level(30, 3), he_rns_level(30, 4)};
}

std::vector<rns_param_set> rns_level_chain(const rns_param_set& top) {
  if (top.primes.empty()) {
    throw std::invalid_argument("rns_level_chain: the top-level set carries no limb primes");
  }
  std::vector<rns_param_set> chain;
  chain.reserve(top.primes.size());
  chain.push_back(top);
  chain.front().name = top.name + "-L0";
  for (std::size_t level = 1; level < top.primes.size(); ++level) {
    rns_param_set next = chain.back();
    next.primes.pop_back();
    next.name = top.name + "-L" + std::to_string(level);
    // The tile width stays the top level's: every level's limbs ride the
    // same tiles, and the chain is ascending, so the widest prime a walk
    // ever dispatches is the top level's last.
    chain.push_back(std::move(next));
  }
  return chain;
}

std::vector<param_set> all_param_sets() {
  return {kyber(),       kyber_compat(), dilithium(),  falcon512(),
          falcon1024(),  he_level(16),   he_level(21), he_level(29)};
}

}  // namespace bpntt::crypto
