#include "crypto/params.h"

#include <stdexcept>

#include "common/bitutil.h"
#include "nttmath/primes.h"
#include "nttmath/wide_uint.h"

namespace bpntt::crypto {

bool param_set::supports_full_ntt() const { return q > 1 && (q - 1) % (2 * n) == 0; }

unsigned required_tile_bits(std::uint64_t q) { return common::bit_length(2 * q); }

namespace {
param_set make(std::string name, std::uint64_t n, std::uint64_t q) {
  param_set p;
  p.name = std::move(name);
  p.n = n;
  p.q = q;
  p.min_tile_bits = required_tile_bits(q);
  return p;
}
}  // namespace

param_set kyber() { return make("Kyber", 256, 3329); }
param_set kyber_compat() { return make("Kyber-r1", 256, 7681); }
param_set dilithium() { return make("Dilithium", 256, 8380417); }
param_set falcon512() { return make("Falcon-512", 512, 12289); }
param_set falcon1024() { return make("Falcon-1024", 1024, 12289); }

param_set he_level(unsigned modulus_bits, std::uint64_t n) {
  const std::uint64_t q = math::ntt_friendly_prime(modulus_bits, n, /*negacyclic=*/true);
  return make("HE-" + std::to_string(modulus_bits) + "b", n, q);
}

unsigned rns_param_set::modulus_bits() const {
  unsigned bits = 0;
  for (const std::uint64_t q : primes) bits += common::bit_length(q);
  return bits;
}

rns_param_set he_rns_level(unsigned limb_bits, unsigned limbs, std::uint64_t n) {
  rns_param_set p;
  p.primes = math::first_k_ntt_primes(limb_bits, n, limbs, /*negacyclic=*/true);
  p.n = n;
  p.name = "HE-RNS-" + std::to_string(limbs) + "x" + std::to_string(limb_bits) + "b";
  // Every limb rides the same tiles, so the width is set by the widest
  // prime in the chain (the last: the search is ascending).
  p.min_tile_bits = required_tile_bits(p.primes.back());
  return p;
}

std::vector<rns_param_set> all_rns_param_sets() {
  return {he_rns_level(30, 2), he_rns_level(30, 3), he_rns_level(30, 4)};
}

std::vector<rns_param_set> rns_level_chain(const rns_param_set& top) {
  if (top.primes.empty()) {
    throw std::invalid_argument("rns_level_chain: the top-level set carries no limb primes");
  }
  std::vector<rns_param_set> chain;
  chain.reserve(top.primes.size());
  chain.push_back(top);
  chain.front().name = top.name + "-L0";
  for (std::size_t level = 1; level < top.primes.size(); ++level) {
    rns_param_set next = chain.back();
    next.primes.pop_back();
    next.name = top.name + "-L" + std::to_string(level);
    // The tile width stays the top level's: every level's limbs ride the
    // same tiles, and the chain is ascending, so the widest prime a walk
    // ever dispatches is the top level's last.
    chain.push_back(std::move(next));
  }
  return chain;
}

rns_param_set rns_rlwe_param_set::level_set() const {
  rns_param_set q;
  q.name = name;
  q.n = n;
  q.primes = primes;
  q.min_tile_bits = min_tile_bits;
  return q;
}

unsigned rns_rlwe_param_set::modulus_bits() const {
  unsigned bits = 0;
  for (const std::uint64_t q : primes) bits += common::bit_length(q);
  return bits;
}

unsigned rns_rlwe_param_set::ks_modulus_bits() const {
  unsigned bits = 0;
  for (const std::uint64_t q : ks_primes) bits += common::bit_length(q);
  return bits;
}

rns_rlwe_param_set he_rns_rlwe_level(unsigned limb_bits, unsigned limbs, std::uint64_t n,
                                     unsigned ks_limbs) {
  if (limbs == 0) {
    throw std::invalid_argument("he_rns_rlwe_level: the ciphertext chain needs >= 1 limb");
  }
  if (ks_limbs == 0) ks_limbs = limbs;
  rns_rlwe_param_set p;
  // One ascending search supplies both chains: the first `limbs` primes are
  // Q, the remaining `ks_limbs` are P.  Every P prime therefore exceeds
  // every Q prime, so ks_limbs == limbs already guarantees ΠP > ΠQ.
  const auto all = math::first_k_ntt_primes(limb_bits, n, limbs + ks_limbs,
                                            /*negacyclic=*/true);
  p.primes.assign(all.begin(), all.begin() + limbs);
  p.ks_primes.assign(all.begin() + limbs, all.end());
  p.n = n;
  p.name = "HE-RNS-RLWE-" + std::to_string(limbs) + "+" + std::to_string(ks_limbs) + "x" +
           std::to_string(limb_bits) + "b";
  p.min_tile_bits = required_tile_bits(all.back());
  validate_keyswitch_headroom(p);
  return p;
}

void validate_keyswitch_headroom(const rns_rlwe_param_set& p) {
  if (p.primes.empty()) {
    throw std::invalid_argument(
        "rns_rlwe: the ciphertext chain carries no limb primes — nothing to key-switch over");
  }
  if (p.ks_primes.empty()) {
    throw std::invalid_argument(
        "rns_rlwe: the key-switching extension chain is empty — relinearization has no "
        "headroom to lift the tensor term into (add ks_primes with ΠP >= the ciphertext "
        "modulus)");
  }
  for (std::size_t i = 0; i < p.ks_primes.size(); ++i) {
    const std::uint64_t q = p.ks_primes[i];
    if ((q & 1ULL) == 0 || !math::is_prime(q)) {
      throw std::invalid_argument("rns_rlwe: extension limb " + std::to_string(i) +
                                  " modulus " + std::to_string(q) + " is not an odd prime");
    }
    if ((q - 1) % (2 * p.n) != 0) {
      throw std::invalid_argument(
          "rns_rlwe: extension prime " + std::to_string(q) +
          " does not support negacyclic NTTs of size n = " + std::to_string(p.n) +
          " (needs q == 1 mod 2n) — key-switching products run on its limb stream");
    }
    for (std::size_t k = 0; k < i; ++k) {
      if (p.ks_primes[k] == q) {
        throw std::invalid_argument("rns_rlwe: extension prime " + std::to_string(q) +
                                    " repeats at limbs " + std::to_string(k) + " and " +
                                    std::to_string(i) +
                                    " (the extension chain must be pairwise coprime)");
      }
    }
    for (const std::uint64_t cq : p.primes) {
      if (cq == q) {
        throw std::invalid_argument(
            "rns_rlwe: extension prime " + std::to_string(q) +
            " already sits in the ciphertext chain — P must be coprime to Q, so the "
            "base-extended tensor term stays exact");
      }
    }
  }
  if (p.plain_modulus < 2) {
    throw std::invalid_argument("rns_rlwe: plaintext modulus t = " +
                                std::to_string(p.plain_modulus) + " must be >= 2");
  }
  for (const std::uint64_t q : p.primes) {
    if (p.plain_modulus % q == 0) {
      throw std::invalid_argument(
          "rns_rlwe: plaintext modulus " + std::to_string(p.plain_modulus) +
          " is a multiple of ciphertext prime " + std::to_string(q) +
          " (the congruence-preserving switch needs t coprime to every limb)");
    }
  }
  for (const std::uint64_t q : p.ks_primes) {
    if (p.plain_modulus % q == 0) {
      throw std::invalid_argument(
          "rns_rlwe: plaintext modulus " + std::to_string(p.plain_modulus) +
          " is a multiple of extension prime " + std::to_string(q) +
          " (the relin P-limb drops need t coprime to every extension prime)");
    }
  }
  // The headroom inequality itself, checked exactly: ΠP >= ΠQ.  The
  // relinearization accumulator carries d2_ext * evk over Q∪P and divides
  // the noise by ΠP; with ΠP below the ciphertext modulus the surviving
  // n·E·ΠQ/ΠP term swamps the noise budget instead of vanishing.
  unsigned q_bits = 0;
  for (const std::uint64_t q : p.primes) q_bits += common::bit_length(q);
  unsigned p_bits = 0;
  for (const std::uint64_t q : p.ks_primes) p_bits += common::bit_length(q);
  const unsigned width = q_bits + p_bits + 1;
  math::wide_uint prod_q(width, 1);
  for (const std::uint64_t q : p.primes) prod_q = prod_q.mul_u64(q);
  math::wide_uint prod_p(width, 1);
  for (const std::uint64_t q : p.ks_primes) prod_p = prod_p.mul_u64(q);
  if (prod_p < prod_q) {
    throw std::invalid_argument(
        "rns_rlwe: key-switching extension modulus ΠP (" + std::to_string(p.ks_modulus_bits()) +
        " bits over " + std::to_string(p.ks_primes.size()) +
        " primes) falls short of the ciphertext modulus ΠQ (" +
        std::to_string(p.modulus_bits()) + " bits over " + std::to_string(p.primes.size()) +
        " primes) — the relin accumulator needs ΠP >= ΠQ; add extension primes or widen "
        "them");
  }
}

std::vector<param_set> all_param_sets() {
  return {kyber(),       kyber_compat(), dilithium(),  falcon512(),
          falcon1024(),  he_level(16),   he_level(21), he_level(29)};
}

}  // namespace bpntt::crypto
