// Deterministic polynomial samplers for the R-LWE workloads: uniform
// coefficients and the centered binomial distribution (the small-error
// distribution Kyber-style schemes use; CBD(eta) has support [-eta, eta]).
// Values are returned as canonical residues mod q.
#pragma once

#include <cstdint>
#include <vector>

#include "common/xoshiro.h"

namespace bpntt::crypto {

[[nodiscard]] std::vector<std::uint64_t> sample_uniform(std::uint64_t n, std::uint64_t q,
                                                        common::xoshiro256ss& rng);

// Centered binomial: sum of eta coin differences, mapped into Z_q.
[[nodiscard]] std::vector<std::uint64_t> sample_cbd(std::uint64_t n, std::uint64_t q,
                                                    unsigned eta, common::xoshiro256ss& rng);

// Uniform message polynomial over {0, 1}.
[[nodiscard]] std::vector<std::uint64_t> sample_message(std::uint64_t n,
                                                        common::xoshiro256ss& rng);

}  // namespace bpntt::crypto
