#include "crypto/rns_rlwe/rns_rlwe.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "crypto/sampler.h"
#include "nttmath/modarith.h"
#include "rns/rns_engine.h"
#include "runtime/job.h"

namespace bpntt::crypto::rns_rlwe {
namespace {

// CBD(eta) on signed support [-eta, eta]: sum of eta coin differences.
// The library's sample_cbd maps straight into one Z_q; the scheme needs
// the SAME signed draw reduced into every limb of the chain, so it keeps
// the integers and reduces per limb.
std::vector<int> sample_cbd_signed(std::uint64_t n, unsigned eta, common::xoshiro256ss& rng) {
  std::vector<int> out(n);
  for (auto& c : out) {
    int v = 0;
    for (unsigned k = 0; k < eta; ++k) v += static_cast<int>(rng.coin()) - static_cast<int>(rng.coin());
    c = v;
  }
  return out;
}

u64 signed_residue(long long v, u64 q) {
  const long long r = v % static_cast<long long>(q);
  return r < 0 ? static_cast<u64>(r + static_cast<long long>(q)) : static_cast<u64>(r);
}

std::vector<u64> to_residues(const std::vector<int>& v, u64 q) {
  std::vector<u64> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = signed_residue(v[i], q);
  return out;
}

// Exact negacyclic product of two small signed polynomials over Z — the
// secret's square for the evaluation key.  Coefficients stay below
// n * eta^2, far inside long long.
std::vector<long long> negacyclic_signed(const std::vector<int>& a, const std::vector<int>& b) {
  const std::size_t n = a.size();
  std::vector<long long> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const long long term = static_cast<long long>(a[i]) * b[j];
      const std::size_t k = i + j;
      if (k < n) {
        out[k] += term;
      } else {
        out[k - n] -= term;
      }
    }
  }
  return out;
}

}  // namespace

scheme::scheme(runtime::context& ctx, rns_rlwe_param_set params, u64 seed)
    : ctx_(ctx), params_(std::move(params)), rng_(seed) {
  validate_keyswitch_headroom(params_);
  if (params_.n != ctx_.options().params.n) {
    throw std::invalid_argument("rns_rlwe: parameter set order n = " + std::to_string(params_.n) +
                                " does not match the context ring's n = " +
                                std::to_string(ctx_.options().params.n));
  }
  q_bases_.reserve(params_.primes.size());
  u_bases_.reserve(params_.primes.size());
  for (std::size_t lvl = 0; lvl < params_.primes.size(); ++lvl) {
    std::vector<u64> q(params_.primes.begin(), params_.primes.end() - static_cast<long>(lvl));
    std::vector<u64> u = q;
    u.insert(u.end(), params_.ks_primes.begin(), params_.ks_primes.end());
    q_bases_.emplace_back(params_.n, std::move(q));
    u_bases_.emplace_back(params_.n, std::move(u));
  }
  union_primes_ = params_.primes;
  union_primes_.insert(union_primes_.end(), params_.ks_primes.begin(), params_.ks_primes.end());
  // Open every limb stream up front: an inadmissible prime fails here with
  // the stream validation's message, before any key material exists.
  for (const u64 q : union_primes_) (void)ctx_.rns_stream(q);
  keygen();
}

const rns::rns_basis& scheme::basis_at(std::size_t level) const {
  if (level >= q_bases_.size()) {
    throw std::invalid_argument("rns_rlwe: level " + std::to_string(level) +
                                " is past the floor of a " + std::to_string(q_bases_.size()) +
                                "-level chain");
  }
  return q_bases_[level];
}

const rns::rns_basis& scheme::union_basis_at(std::size_t level) const {
  if (level >= u_bases_.size()) {
    throw std::invalid_argument("rns_rlwe: level " + std::to_string(level) +
                                " is past the floor of a " + std::to_string(u_bases_.size()) +
                                "-level chain");
  }
  return u_bases_[level];
}

std::size_t scheme::evk_index(std::size_t level, std::size_t u) const {
  const std::size_t kq = params_.primes.size() - level;
  return u < kq ? u : params_.primes.size() + (u - kq);
}

std::vector<std::vector<u64>> scheme::run_products(const std::vector<prod_spec>& ps) {
  std::vector<runtime::job_id> ids;
  ids.reserve(ps.size());
  for (const prod_spec& p : ps) {
    runtime::polymul_job j;
    j.a = *p.a;
    j.b = *p.b;
    ids.push_back(ctx_.rns_stream(p.prime).submit(std::move(j)));
  }
  // Flush every touched stream together, after all submissions, so each
  // limb's jobs ride one dispatch group and the groups overlap across
  // channels instead of trickling in one product at a time.
  std::vector<u64> flushed;
  for (const prod_spec& p : ps) {
    if (std::find(flushed.begin(), flushed.end(), p.prime) == flushed.end()) {
      flushed.push_back(p.prime);
      ctx_.rns_stream(p.prime).flush();
    }
  }
  std::vector<std::vector<u64>> outs;
  outs.reserve(ps.size());
  for (const runtime::job_id id : ids) {
    outs.push_back(std::move(ctx_.wait(id).outputs.front()));
  }
  return outs;
}

void scheme::keygen() {
  const std::uint64_t n = params_.n;
  const u64 t = params_.plain_modulus;
  s_ = sample_cbd_signed(n, params_.eta, rng_);
  s2_ = negacyclic_signed(s_, s_);
  s_res_.clear();
  s_res_.reserve(union_primes_.size());
  for (const u64 q : union_primes_) s_res_.push_back(to_residues(s_, q));

  // Public key over the top-level chain: b = a*s + t*e per limb.
  const auto e = sample_cbd_signed(n, params_.eta, rng_);
  const std::size_t kq = params_.primes.size();
  pk_a_.residues.clear();
  pk_a_.residues.reserve(kq);
  for (const u64 q : params_.primes) pk_a_.residues.push_back(sample_uniform(n, q, rng_));
  std::vector<prod_spec> prods;
  prods.reserve(kq);
  for (std::size_t i = 0; i < kq; ++i) {
    prods.push_back({params_.primes[i], &pk_a_.residues[i], &s_res_[i]});
  }
  auto as = run_products(prods);
  pk_b_.residues.assign(kq, {});
  for (std::size_t i = 0; i < kq; ++i) {
    const u64 q = params_.primes[i];
    auto& limb = pk_b_.residues[i];
    limb.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      limb[c] = math::add_mod(as[i][c], math::mul_mod(t % q, signed_residue(e[c], q), q), q);
    }
  }
  build_evaluation_key();
}

void scheme::build_evaluation_key() {
  const std::uint64_t n = params_.n;
  const u64 t = params_.plain_modulus;
  const std::size_t ku = union_primes_.size();
  const auto e = sample_cbd_signed(n, params_.eta, rng_);
  evk_a_.clear();
  evk_a_.reserve(ku);
  for (const u64 q : union_primes_) evk_a_.push_back(sample_uniform(n, q, rng_));
  std::vector<prod_spec> prods;
  prods.reserve(ku);
  for (std::size_t u = 0; u < ku; ++u) {
    prods.push_back({union_primes_[u], &evk_a_[u], &s_res_[u]});
  }
  auto as = run_products(prods);
  evk_b_.assign(ku, {});
  for (std::size_t u = 0; u < ku; ++u) {
    const u64 q = union_primes_[u];
    // ΠP mod q: the CRT image of the extension modulus at the Q limbs,
    // exactly zero at the P limbs themselves (q divides ΠP) — which is
    // what makes one key valid over every level's union basis.
    u64 pp = 1 % q;
    for (const u64 pq : params_.ks_primes) pp = math::mul_mod(pp, pq % q, q);
    auto& limb = evk_b_[u];
    limb.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      const u64 v = math::add_mod(as[u][c], math::mul_mod(t % q, signed_residue(e[c], q), q), q);
      limb[c] = math::add_mod(v, math::mul_mod(pp, signed_residue(s2_[c], q), q), q);
    }
  }
  // The evaluation key is the hottest fixed operand in the workload — every
  // relinearization multiplies against both halves on every union limb.
  // Pin its NTT images so capacity pressure from transient ciphertext
  // operands can never evict them (rotate_evaluation_key still drops them
  // explicitly via invalidate_operand, which overrides the pin).
  for (std::size_t u = 0; u < ku; ++u) {
    ctx_.pin_operand(evk_a_[u]);
    ctx_.pin_operand(evk_b_[u]);
  }
}

void scheme::rotate_evaluation_key() {
  // Drop the outgoing key's NTT-domain images first: the coefficients are
  // the cache key, so invalidation must happen while the old residues are
  // still in hand.
  for (std::size_t u = 0; u < evk_a_.size(); ++u) {
    ctx_.invalidate_operand(evk_a_[u]);
    ctx_.invalidate_operand(evk_b_[u]);
  }
  build_evaluation_key();
}

ciphertext scheme::encrypt(const std::vector<u64>& message) {
  const std::uint64_t n = params_.n;
  const u64 t = params_.plain_modulus;
  if (message.size() != n) {
    throw std::invalid_argument("rns_rlwe: message carries " + std::to_string(message.size()) +
                                " coefficients for a ring of order n = " + std::to_string(n));
  }
  for (std::size_t c = 0; c < message.size(); ++c) {
    if (message[c] >= t) {
      throw std::invalid_argument("rns_rlwe: message coefficient " + std::to_string(c) + " = " +
                                  std::to_string(message[c]) +
                                  " is not a residue mod the plaintext modulus t = " +
                                  std::to_string(t));
    }
  }
  const auto r = sample_cbd_signed(n, params_.eta, rng_);
  const auto e0 = sample_cbd_signed(n, params_.eta, rng_);
  const auto e1 = sample_cbd_signed(n, params_.eta, rng_);
  const std::size_t kq = params_.primes.size();
  std::vector<std::vector<u64>> r_res;
  r_res.reserve(kq);
  for (const u64 q : params_.primes) r_res.push_back(to_residues(r, q));
  // Both products of each limb ride that limb's stream in one group; the
  // pk operands are the fixed side, so repeat encrypts hit their cached
  // NTT images.
  std::vector<prod_spec> prods;
  prods.reserve(2 * kq);
  for (std::size_t i = 0; i < kq; ++i) {
    prods.push_back({params_.primes[i], &pk_b_.residues[i], &r_res[i]});
    prods.push_back({params_.primes[i], &pk_a_.residues[i], &r_res[i]});
  }
  auto outs = run_products(prods);
  ciphertext ct;
  ct.level = 0;
  ct.c0.residues.assign(kq, {});
  ct.c1.residues.assign(kq, {});
  for (std::size_t i = 0; i < kq; ++i) {
    const u64 q = params_.primes[i];
    auto& l0 = ct.c0.residues[i];
    auto& l1 = ct.c1.residues[i];
    l0.resize(n);
    l1.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      u64 v = math::add_mod(outs[2 * i][c], math::mul_mod(t % q, signed_residue(e0[c], q), q), q);
      l0[c] = math::add_mod(v, message[c] % q, q);
      l1[c] = math::add_mod(outs[2 * i + 1][c],
                            math::mul_mod(t % q, signed_residue(e1[c], q), q), q);
    }
  }
  return ct;
}

void scheme::require_ciphertext(const ciphertext& ct, const char* what) const {
  if (ct.level >= q_bases_.size()) {
    throw std::invalid_argument(std::string("rns_rlwe: ") + what + " sits at level " +
                                std::to_string(ct.level) + " of a " +
                                std::to_string(q_bases_.size()) + "-level chain");
  }
  const std::size_t kq = q_bases_[ct.level].limbs();
  if (ct.c0.limbs() != kq || ct.c1.limbs() != kq) {
    throw std::invalid_argument(std::string("rns_rlwe: ") + what + " carries " +
                                std::to_string(ct.c0.limbs()) + "/" +
                                std::to_string(ct.c1.limbs()) + " limbs, level " +
                                std::to_string(ct.level) + " lives over " + std::to_string(kq));
  }
}

std::vector<math::wide_uint> scheme::phase_of(const ciphertext& ct) {
  require_ciphertext(ct, "phase operand");
  const rns::rns_basis& qb = q_bases_[ct.level];
  const std::size_t kq = qb.limbs();
  std::vector<prod_spec> prods;
  prods.reserve(kq);
  for (std::size_t i = 0; i < kq; ++i) {
    prods.push_back({qb.prime(i), &ct.c1.residues[i], &s_res_[i]});
  }
  auto outs = run_products(prods);
  rns::rns_poly ph;
  ph.residues.assign(kq, {});
  for (std::size_t i = 0; i < kq; ++i) {
    const u64 q = qb.prime(i);
    ph.residues[i].resize(params_.n);
    for (std::size_t c = 0; c < params_.n; ++c) {
      ph.residues[i][c] = math::sub_mod(ct.c0.residues[i][c], outs[i][c], q);
    }
  }
  return rns::rns_recombine(ph, qb);
}

std::vector<u64> scheme::decrypt(const ciphertext& ct) {
  require_ciphertext(ct, "decrypt operand");
  const rns::rns_basis& qb = q_bases_[ct.level];
  const math::wide_uint& m = qb.modulus();
  const u64 t = params_.plain_modulus;
  const auto phase = phase_of(ct);
  std::vector<u64> out;
  out.reserve(phase.size());
  // Centered reduction: phase coefficients represent values in
  // (-M/2, M/2]; the wide residue w stands for w - M once 2w > M.  The
  // message is the centered value mod t (for the default t = 2 that is the
  // parity, which every odd-prime modulus switch preserves exactly; wider
  // t picks up the BGV q^-1 scale per level, which is the caller's to
  // track).
  for (const auto& w : phase) {
    if (m < w.shl1()) {
      const u64 mag = m.sub(w).mod_u64(t);
      out.push_back((t - mag) % t);
    } else {
      out.push_back(w.mod_u64(t));
    }
  }
  return out;
}

int scheme::noise_budget_bits(const ciphertext& ct) {
  require_ciphertext(ct, "noise probe operand");
  const rns::rns_basis& qb = q_bases_[ct.level];
  const math::wide_uint& m = qb.modulus();
  const auto phase = phase_of(ct);
  unsigned max_bits = 0;
  for (const auto& w : phase) {
    const math::wide_uint mag = m < w.shl1() ? m.sub(w) : w;
    unsigned b = mag.bits();
    while (b > 0 && !mag.bit(b - 1)) --b;
    max_bits = std::max(max_bits, b);
  }
  return static_cast<int>(qb.modulus_bits()) - 1 - static_cast<int>(max_bits);
}

ciphertext scheme::multiply(const ciphertext& x, const ciphertext& y) {
  require_ciphertext(x, "multiply operand a");
  require_ciphertext(y, "multiply operand b");
  if (x.level != y.level) {
    throw std::invalid_argument("rns_rlwe: multiply operands sit at levels " +
                                std::to_string(x.level) + " and " + std::to_string(y.level) +
                                " — bring them to the same level first");
  }
  const std::size_t lvl = x.level;
  const rns::rns_basis& qb = q_bases_[lvl];
  if (qb.limbs() < 2) {
    throw std::invalid_argument(
        "rns_rlwe: multiply at the one-limb floor — there is no level left to rescale into");
  }
  const std::size_t kq = qb.limbs();
  const std::size_t kp = params_.ks_primes.size();
  const rns::rns_basis& ub = u_bases_[lvl];
  const u64 t = params_.plain_modulus;
  const std::uint64_t n = params_.n;

  // Ciphertext tensor: four products per limb in one staged fan-out.
  // phase_x * phase_y = d0 - d1*s + d2*s^2 with d0 = x0*y0,
  // d1 = x0*y1 + x1*y0, d2 = x1*y1.
  std::vector<prod_spec> prods;
  prods.reserve(4 * kq);
  for (std::size_t i = 0; i < kq; ++i) {
    const u64 q = qb.prime(i);
    prods.push_back({q, &x.c0.residues[i], &y.c0.residues[i]});
    prods.push_back({q, &x.c0.residues[i], &y.c1.residues[i]});
    prods.push_back({q, &x.c1.residues[i], &y.c0.residues[i]});
    prods.push_back({q, &x.c1.residues[i], &y.c1.residues[i]});
  }
  auto outs = run_products(prods);
  rns::rns_poly d0, d1, d2;
  for (std::size_t i = 0; i < kq; ++i) {
    const u64 q = qb.prime(i);
    d0.residues.push_back(std::move(outs[4 * i]));
    std::vector<u64> mid = std::move(outs[4 * i + 1]);
    for (std::size_t c = 0; c < n; ++c) mid[c] = math::add_mod(mid[c], outs[4 * i + 2][c], q);
    d1.residues.push_back(std::move(mid));
    d2.residues.push_back(std::move(outs[4 * i + 3]));
  }

  // Relinearize the quadratic term through the evaluation key: lift d2
  // onto Q_level ∪ P by exact base extension, multiply against the key's
  // fixed NTT-cached operands over every union limb.
  rns::rns_engine qeng(ctx_, qb);
  const rns::rns_poly d2x = qeng.base_extend(d2, ub);
  prods.clear();
  prods.reserve(2 * ub.limbs());
  for (std::size_t u = 0; u < ub.limbs(); ++u) {
    const std::size_t e = evk_index(lvl, u);
    prods.push_back({ub.prime(u), &d2x.residues[u], &evk_b_[e]});
    prods.push_back({ub.prime(u), &d2x.residues[u], &evk_a_[e]});
  }
  outs = run_products(prods);
  rns::rns_poly r0, r1;
  for (std::size_t u = 0; u < ub.limbs(); ++u) {
    r0.residues.push_back(std::move(outs[2 * u]));
    r1.residues.push_back(std::move(outs[2 * u + 1]));
  }

  // Drop the extension tail: the union chain is ascending Q-then-P, so
  // congruence-preserving rescales shed exactly the P limbs, dividing the
  // relin terms by ΠP (the evk's ΠP*s^2 scale cancels; the key noise
  // shrinks below a coefficient) while keeping them intact mod t.
  rns::rns_basis cur = ub;
  for (std::size_t d = 0; d < kp; ++d) {
    rns::rns_engine eng(ctx_, cur);
    r0 = eng.rescale(r0, t);
    r1 = eng.rescale(r1, t);
    if (d + 1 < kp) cur = cur.drop_last();
  }

  // Fold the relinearized terms into the tensor and switch one level down.
  rns::rns_poly c0n, c1n;
  c0n.residues.assign(kq, {});
  c1n.residues.assign(kq, {});
  for (std::size_t i = 0; i < kq; ++i) {
    const u64 q = qb.prime(i);
    c0n.residues[i].resize(n);
    c1n.residues[i].resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      c0n.residues[i][c] = math::add_mod(d0.residues[i][c], r0.residues[i][c], q);
      c1n.residues[i][c] = math::add_mod(d1.residues[i][c], r1.residues[i][c], q);
    }
  }
  ciphertext out;
  out.level = lvl + 1;
  out.c0 = qeng.rescale(c0n, t);
  out.c1 = qeng.rescale(c1n, t);
  return out;
}

}  // namespace bpntt::crypto::rns_rlwe
