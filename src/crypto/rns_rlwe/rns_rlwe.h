// Leveled RNS-RLWE: the first full homomorphic-encryption scheme on top of
// the bpntt runtime — BGV-style, plaintext modulus t, over a chain of
// word-sized NTT-friendly limb primes.
//
//   runtime::context ctx(opts);
//   rns_rlwe::scheme sch(ctx, crypto::he_rns_rlwe_level(20, 4, 32), seed);
//   auto ct = sch.encrypt(bits);          // level 0: the full 4-limb modulus
//   ct = sch.multiply(ct, ct);            // tensor -> relinearize -> rescale
//   auto round_trip = sch.decrypt(ct);    // at any level down the chain
//
// Phase convention: phase(ct) = c0 - c1*s = m + t*e (mod M_level).  Every
// ring product is staged per limb onto the context's dedicated limb streams
// (ctx.rns_stream(prime)) in the batched sample/finish shape of the
// runtime's rlwe path: host-side sampling, one wide per-limb product
// fan-out, host-side finish — so two backends given the same seed produce
// bit-identical ciphertexts at every level.
//
// multiply consumes one level: the ciphertext tensor (d0, d1, d2) is
// relinearized through hybrid (GHS-style) key switching — d2 is
// base-extended from Q_level to Q_level ∪ P (runtime base-extend jobs, the
// exact CRT lift), multiplied against the evaluation key over the union,
// and the P limbs are dropped again by congruence-preserving rescales —
// then the level's own rescale divides the result down the chain.  The
// congruence-preserving switch (rns_rescale_job::congruence = t) keeps the
// message residue intact through every division.
//
// The evaluation key is the textbook warm-transform case: evk = (a, b =
// a*s + t*e + ΠP*s^2) lives over the FULL union Q ∪ P, and its per-limb
// residues are valid at every level (the ΠP*s^2 term reduces limb-wise
// with no reference to the level's modulus), so one fixed key serves the
// whole level walk and its NTT-domain images stay hot in the operand cache
// across repeated multiplies.  rotate_evaluation_key() resamples it and
// invalidates the cached images — the key-churn path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/xoshiro.h"
#include "crypto/params.h"
#include "rns/rns_basis.h"
#include "rns/rns_poly.h"
#include "runtime/context.h"

namespace bpntt::crypto::rns_rlwe {

using u64 = core::u64;

// A ciphertext somewhere down the level chain: residues over the level's
// basis Q_level (level 0 = the full chain, levels() - 1 = the one-limb
// floor).
struct ciphertext {
  std::size_t level = 0;
  rns::rns_poly c0, c1;
};

class scheme {
 public:
  // Validates the parameter set (validate_keyswitch_headroom), builds the
  // per-level bases, opens every limb stream, and runs keygen: secret key,
  // public key over Q, evaluation key over Q ∪ P.  All randomness derives
  // from `seed`, so two schemes with equal (params, seed) on different
  // backends agree bit-for-bit.
  scheme(runtime::context& ctx, rns_rlwe_param_set params, u64 seed = 1);

  [[nodiscard]] const rns_rlwe_param_set& params() const noexcept { return params_; }
  // Chain length: a k-limb set has k levels and supports k-1 multiplies.
  [[nodiscard]] std::size_t levels() const noexcept { return q_bases_.size(); }
  [[nodiscard]] const rns::rns_basis& basis_at(std::size_t level) const;
  // The union basis Q_level ∪ P relinearization lifts into at this level.
  [[nodiscard]] const rns::rns_basis& union_basis_at(std::size_t level) const;

  // Encrypt n message residues (each < plain_modulus) at the top level.
  [[nodiscard]] ciphertext encrypt(const std::vector<u64>& message);
  // Decrypt at the ciphertext's level: phase = c0 - c1*s, exact CRT lift,
  // centered reduction mod t.
  [[nodiscard]] std::vector<u64> decrypt(const ciphertext& ct);

  // One leveled multiply: tensor -> relinearize (base-extend + evk products
  // + P-limb drops) -> rescale one level down.  Both inputs must sit at the
  // same level, above the one-limb floor.
  [[nodiscard]] ciphertext multiply(const ciphertext& a, const ciphertext& b);
  [[nodiscard]] ciphertext square(const ciphertext& a) { return multiply(a, a); }

  // Resample the evaluation key (fresh randomness, same secret) and drop
  // the old key's NTT-domain images from the operand cache — the key-churn
  // path; the next multiply pays cold transforms again.
  void rotate_evaluation_key();

  // Secret-key-side noise probe: bits of headroom between the largest
  // centered phase coefficient and M_level / 2.  At 0 the next operation
  // may decrypt wrong; fresh ciphertexts sit near modulus_bits - eta bits.
  [[nodiscard]] int noise_budget_bits(const ciphertext& ct);

 private:
  struct prod_spec {
    u64 prime = 0;
    const std::vector<u64>* a = nullptr;
    const std::vector<u64>* b = nullptr;
  };

  // The staged product fan-out every scheme operation rides: submit one
  // polymul per spec on its limb's dedicated stream, flush every touched
  // stream together (so limb groups overlap), wait in order.
  [[nodiscard]] std::vector<std::vector<u64>> run_products(const std::vector<prod_spec>& ps);
  void keygen();
  void build_evaluation_key();
  // Residues of the secret key over union limb u (Q order then P order).
  [[nodiscard]] const std::vector<u64>& secret_residues(std::size_t u) const {
    return s_res_[u];
  }
  // Index into the full-union evk arrays for limb u of union_basis_at(level).
  [[nodiscard]] std::size_t evk_index(std::size_t level, std::size_t u) const;
  void require_ciphertext(const ciphertext& ct, const char* what) const;
  // phase = c0 - c1*s lifted to wide coefficients over the level basis.
  [[nodiscard]] std::vector<math::wide_uint> phase_of(const ciphertext& ct);

  runtime::context& ctx_;
  rns_rlwe_param_set params_;
  common::xoshiro256ss rng_;
  std::vector<rns::rns_basis> q_bases_;  // level -> Q_level
  std::vector<rns::rns_basis> u_bases_;  // level -> Q_level ∪ P
  std::vector<u64> union_primes_;        // Q_0 then P, the evk's limb order

  std::vector<int> s_;                    // secret key, CBD(eta) signed
  std::vector<long long> s2_;             // s*s negacyclic, exact over Z
  std::vector<std::vector<u64>> s_res_;   // per union limb
  rns::rns_poly pk_a_, pk_b_;             // public key over Q_0
  std::vector<std::vector<u64>> evk_a_, evk_b_;  // evaluation key per union limb
};

}  // namespace bpntt::crypto::rns_rlwe
