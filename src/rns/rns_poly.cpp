#include "rns/rns_poly.h"

#include <stdexcept>
#include <string>

namespace bpntt::rns {

rns_poly rns_decompose(std::span<const math::wide_uint> coeffs, const rns_basis& basis) {
  rns_poly out;
  out.residues.assign(basis.limbs(), std::vector<u64>(coeffs.size()));
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    const math::wide_uint& c = coeffs[j];
    if (c.bits() != basis.wide_bits()) {
      throw std::invalid_argument("rns_decompose: coefficient " + std::to_string(j) +
                                  " has width " + std::to_string(c.bits()) +
                                  " but the basis works at " +
                                  std::to_string(basis.wide_bits()) + " bits");
    }
    if (c >= basis.modulus()) {
      throw std::invalid_argument("rns_decompose: coefficient " + std::to_string(j) +
                                  " is not canonical (>= M)");
    }
    for (std::size_t i = 0; i < basis.limbs(); ++i) {
      out.residues[i][j] = basis.mod_limb(c, i);
    }
  }
  return out;
}

std::vector<math::wide_uint> rns_recombine(const rns_poly& p, const rns_basis& basis) {
  if (p.limbs() != basis.limbs()) {
    throw std::invalid_argument("rns_recombine: polynomial carries " +
                                std::to_string(p.limbs()) + " limbs for a basis of " +
                                std::to_string(basis.limbs()));
  }
  const std::size_t n = p.residues.empty() ? 0 : p.residues.front().size();
  for (std::size_t i = 0; i < p.limbs(); ++i) {
    if (p.residues[i].size() != n) {
      throw std::invalid_argument("rns_recombine: limb " + std::to_string(i) + " has " +
                                  std::to_string(p.residues[i].size()) +
                                  " coefficients, limb 0 has " + std::to_string(n));
    }
  }

  std::vector<math::wide_uint> out(n, math::wide_uint(basis.wide_bits()));
  for (std::size_t j = 0; j < n; ++j) {
    // x = sum_i (x_i * y_i mod q_i) * M_i, reduced once at the end: every
    // term t_i * M_i is below M (t_i < q_i, M_i = M / q_i), so the lazy
    // accumulator stays below k*M — inside wide_bits() by construction —
    // and at most k-1 conditional subtracts canonicalize it.
    math::wide_uint acc(basis.wide_bits());
    for (std::size_t i = 0; i < basis.limbs(); ++i) {
      const u64 t = math::mul_mod(p.residues[i][j], basis.crt_weight(i), basis.prime(i));
      acc = acc.add(basis.crt_term(i).mul_u64(t));
    }
    while (acc >= basis.modulus()) acc = acc.sub(basis.modulus());
    out[j] = std::move(acc);
  }
  return out;
}

std::vector<math::wide_uint> schoolbook_negacyclic_wide(std::span<const math::wide_uint> a,
                                                        std::span<const math::wide_uint> b,
                                                        const math::wide_uint& m) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("schoolbook_negacyclic_wide: length mismatch");
  }
  const std::size_t n = a.size();
  std::vector<math::wide_uint> c(n, math::wide_uint(m.bits()));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const math::wide_uint prod = math::wide_uint::mul_mod(a[i], b[j], m);
      if (prod.is_zero()) continue;
      const std::size_t k = (i + j) % n;
      if (i + j < n) {
        c[k] = math::wide_uint::add_mod(c[k], prod, m);
      } else {
        // x^n = -1: wrapped products subtract (m - prod is canonical since
        // prod is non-zero).
        c[k] = math::wide_uint::add_mod(c[k], m.sub(prod), m);
      }
    }
  }
  return c;
}

}  // namespace bpntt::rns
