#include "rns/rns_engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace bpntt::rns {

rns_engine::rns_engine(runtime::context& ctx, rns_basis basis)
    : ctx_(ctx), basis_(std::move(basis)) {
  const auto& params = ctx_.options().params;
  if (basis_.n() != params.n) {
    throw std::invalid_argument("rns_engine: basis order n = " + std::to_string(basis_.n()) +
                                " does not match the context ring's n = " +
                                std::to_string(params.n));
  }
  // Open every limb stream now: an inadmissible limb prime (outside the
  // backend's modulus envelope, say) fails here with the stream
  // validation's precise message, and placement is settled before the
  // first product.
  for (const u64 q : basis_.primes()) (void)ctx_.rns_stream(q);
}

void rns_engine::require_limbs(const rns_poly& p, const char* what) const {
  if (p.limbs() != basis_.limbs()) {
    throw std::invalid_argument(std::string("rns_engine: ") + what + " carries " +
                                std::to_string(p.limbs()) + " limbs for a basis of " +
                                std::to_string(basis_.limbs()));
  }
}

std::vector<std::vector<u64>> rns_engine::collect(const std::vector<runtime::job_id>& ids) {
  return collect_on(basis_.primes(), ids);
}

std::vector<std::vector<u64>> rns_engine::collect_on(const std::vector<u64>& flush_primes,
                                                     const std::vector<runtime::job_id>& ids) {
  // Flush the limb streams together so every limb group enters the ready
  // queue before scheduling starts — that is what lets disjoint-channel
  // groups overlap instead of trickling in one at a time.
  for (const u64 q : flush_primes) ctx_.rns_stream(q).flush();
  last_ = fanout_stats{};
  std::vector<std::vector<u64>> outputs;
  outputs.reserve(ids.size());
  for (const runtime::job_id id : ids) {
    runtime::job_result r = ctx_.wait(id);
    // One dispatch group per limb: amortize the batch wall-clock over the
    // jobs that rode in it so multi-job fan-outs do not double-count.
    last_.serial_cycles += r.wall_cycles / r.jobs_in_batch;
    ++last_.limb_jobs;
    outputs.push_back(std::move(r.outputs.front()));
  }
  return outputs;
}

std::vector<math::wide_uint> rns_engine::polymul(const std::vector<math::wide_uint>& a,
                                                 const std::vector<math::wide_uint>& b) {
  return lift(polymul(lower(a), lower(b)));
}

rns_poly rns_engine::polymul(const rns_poly& a, const rns_poly& b) {
  require_limbs(a, "polymul operand a");
  require_limbs(b, "polymul operand b");
  runtime::rns_polymul_job job;
  job.primes = basis_.primes();
  job.a = a.residues;
  job.b = b.residues;
  const runtime::rns_submission sub = ctx_.submit_rns(std::move(job));
  rns_poly out;
  out.residues = collect(sub.limb_ids);
  return out;
}

rns_poly rns_engine::transform(const rns_poly& p, core::transform_dir dir, const char* what) {
  require_limbs(p, what);
  std::vector<runtime::job_id> ids;
  ids.reserve(basis_.limbs());
  for (std::size_t i = 0; i < basis_.limbs(); ++i) {
    runtime::ntt_job j;
    j.dir = dir;
    j.coeffs = p.residues[i];
    ids.push_back(ctx_.rns_stream(basis_.prime(i)).submit(std::move(j)));
  }
  rns_poly out;
  out.residues = collect(ids);
  return out;
}

const rns_basis& rns_engine::dropped_basis() {
  if (!dropped_) dropped_ = basis_.drop_last();
  return *dropped_;
}

rns_poly rns_engine::rescale(const rns_poly& p, u64 congruence) {
  require_limbs(p, "rescale operand");
  if (basis_.limbs() < 2) {
    throw std::invalid_argument(
        "rns_engine: rescale on a one-limb basis — there is no limb left to drop");
  }
  const std::size_t kept = basis_.limbs() - 1;
  const u64 q_drop = basis_.prime(kept);
  const std::vector<u64>& dropped_residues = p.residues[kept];
  std::vector<runtime::job_id> ids;
  ids.reserve(kept);
  for (std::size_t i = 0; i < kept; ++i) {
    runtime::rns_rescale_job j;
    j.prime = basis_.prime(i);
    j.drop_prime = q_drop;
    j.x = p.residues[i];
    j.dropped = dropped_residues;
    j.congruence = congruence;
    ids.push_back(ctx_.rns_stream(basis_.prime(i)).submit(std::move(j)));
  }
  rns_poly out;
  out.residues = collect(ids);
  return out;
}

rns_poly rns_engine::base_extend(const rns_poly& p, const rns_basis& target) {
  require_limbs(p, "base_extend operand");
  if (target.n() != basis_.n()) {
    throw std::invalid_argument("rns_engine: base_extend target has ring order n = " +
                                std::to_string(target.n()) + ", this basis has n = " +
                                std::to_string(basis_.n()));
  }
  const std::size_t shared = std::min<std::size_t>(target.limbs(), basis_.limbs());
  for (std::size_t i = 0; i < shared; ++i) {
    if (target.prime(i) != basis_.prime(i)) {
      throw std::invalid_argument(
          "rns_engine: base_extend target limb " + std::to_string(i) + " is prime " +
          std::to_string(target.prime(i)) + ", this chain's is " +
          std::to_string(basis_.prime(i)) +
          " (extension grows the chain at the tail, so this basis must be a prefix)");
    }
  }
  if (target.limbs() <= basis_.limbs()) {
    throw std::invalid_argument(
        "rns_engine: base_extend target carries " + std::to_string(target.limbs()) +
        " limbs, not more than this chain's " + std::to_string(basis_.limbs()) +
        " (base extension only ever grows the chain)");
  }

  // One job per NEW limb, on that limb's dedicated stream; the source
  // residues travel with each job so the exact lift is self-contained.
  std::vector<u64> new_primes;
  std::vector<runtime::job_id> ids;
  for (std::size_t i = basis_.limbs(); i < target.limbs(); ++i) {
    runtime::rns_base_extend_job j;
    j.prime = target.prime(i);
    j.source_primes = basis_.primes();
    j.residues = p.residues;
    new_primes.push_back(target.prime(i));
    ids.push_back(ctx_.rns_stream(target.prime(i)).submit(std::move(j)));
  }
  rns_poly out;
  out.residues = p.residues;
  out.residues.reserve(target.limbs());
  for (auto& limb : collect_on(new_primes, ids)) out.residues.push_back(std::move(limb));
  return out;
}

rns_poly rns_engine::modswitch_polymul(const rns_poly& a, const rns_poly& b) {
  // Two chained fan-outs: the per-limb products (which overlap across
  // channels), then the per-limb rescale corrections riding the same limb
  // streams.  The rescale needs every limb's product — including the
  // dropped limb's, whose residues drive the rounding — so the seam
  // between the two submissions is a genuine data dependency, not a
  // scheduling artefact.
  const rns_poly product = polymul(a, b);
  const fanout_stats mul_stats = last_;
  rns_poly out = rescale(product);
  last_.serial_cycles += mul_stats.serial_cycles;
  last_.limb_jobs += mul_stats.limb_jobs;
  return out;
}

std::vector<math::wide_uint> rns_engine::modswitch_polymul(
    const std::vector<math::wide_uint>& a, const std::vector<math::wide_uint>& b) {
  return rns_recombine(modswitch_polymul(lower(a), lower(b)), dropped_basis());
}

rns_poly rns_engine::forward(const rns_poly& p) {
  return transform(p, core::transform_dir::forward, "forward operand");
}

rns_poly rns_engine::inverse(const rns_poly& p) {
  return transform(p, core::transform_dir::inverse, "inverse operand");
}

rns_poly rns_engine::lower(const std::vector<math::wide_uint>& coeffs) const {
  return rns_decompose(coeffs, basis_);
}

std::vector<math::wide_uint> rns_engine::lift(const rns_poly& p) const {
  return rns_recombine(p, basis_);
}

}  // namespace bpntt::rns
