// RNS basis: a chain of pairwise-coprime, NTT-friendly word-sized primes
// standing in for one big modulus M = q_0 * q_1 * ... * q_{k-1}.
//
// BP-NTT's bit-parallel in-SRAM multiplier works on word-sized moduli, but
// FHE-scale RLWE and big-integer polynomial multiplication need moduli far
// wider than one machine word.  The residue number system bridges the gap:
// arithmetic mod M decomposes into k independent channels of arithmetic
// mod q_i (one word-sized NTT each — exactly what the hardware runs), and
// the Chinese Remainder Theorem recombines the channels exactly.
//
// The basis owns everything the recombination needs, precomputed once over
// nttmath/wide_uint:
//   M      — the big modulus, at wide_bits() working width,
//   M_i    — M / q_i (the CRT term of limb i),
//   y_i    — (M_i)^-1 mod q_i (the CRT weight of limb i, a machine word),
// so that x = sum_i (x_i * y_i mod q_i) * M_i (mod M).
#pragma once

#include <cstddef>
#include <vector>

#include "nttmath/modarith.h"
#include "nttmath/wide_uint.h"

namespace bpntt::rns {

using math::u64;

class rns_basis {
 public:
  // An explicit chain for NTTs of size n (power of two).  Validates every
  // limb — odd prime, q_i == 1 (mod 2n), no duplicates — with messages
  // naming the offending limb.  Throws std::invalid_argument.
  rns_basis(u64 n, std::vector<u64> primes);

  // The chain of the first `limbs` NTT-friendly primes of exactly
  // `limb_bits` bits (ascending), via math::first_k_ntt_primes.
  [[nodiscard]] static rns_basis with_limb_bits(u64 n, unsigned limb_bits, unsigned limbs);

  // The derived basis after one modulus switch: the same chain minus its
  // last limb, with every CRT constant (M, M_i, y_i) recomputed and
  // revalidated from scratch — this is the basis an rns_engine::rescale
  // result lives in.  Throws std::invalid_argument on a one-limb chain
  // (there is no smaller basis to switch to).
  [[nodiscard]] rns_basis drop_last() const;

  // The derived basis for switching to `other`'s chain: validates that
  // `other` names the same ring order and that its chain is a prefix of
  // this one (a rescale chain only ever sheds limbs from the tail, so a
  // reachable target is exactly a prefix), then rebuilds the CRT constants
  // for the shorter chain.  Throws std::invalid_argument otherwise.
  [[nodiscard]] rns_basis switch_to(const rns_basis& other) const;

  [[nodiscard]] u64 n() const noexcept { return n_; }
  [[nodiscard]] std::size_t limbs() const noexcept { return primes_.size(); }
  [[nodiscard]] const std::vector<u64>& primes() const noexcept { return primes_; }
  [[nodiscard]] u64 prime(std::size_t i) const { return primes_.at(i); }

  // Exact bit length of M.
  [[nodiscard]] unsigned modulus_bits() const noexcept { return modulus_bits_; }
  // Working width every big coefficient uses: modulus_bits() plus the
  // headroom the lazily-reduced CRT accumulator (< k*M) and the
  // double-and-add oracle (m < 2^(bits-1)) need.
  [[nodiscard]] unsigned wide_bits() const noexcept { return wide_bits_; }

  // M, at wide_bits() width.
  [[nodiscard]] const math::wide_uint& modulus() const noexcept { return modulus_; }
  // M_i = M / q_i, at wide_bits() width.
  [[nodiscard]] const math::wide_uint& crt_term(std::size_t i) const {
    return crt_terms_.at(i);
  }
  // y_i = (M_i)^-1 mod q_i.
  [[nodiscard]] u64 crt_weight(std::size_t i) const { return crt_weights_.at(i); }

  // Residue of a big value in limb i's channel: x mod q_i.
  [[nodiscard]] u64 mod_limb(const math::wide_uint& x, std::size_t i) const {
    return x.mod_u64(primes_.at(i));
  }

 private:
  u64 n_ = 0;
  std::vector<u64> primes_;
  unsigned modulus_bits_ = 0;
  unsigned wide_bits_ = 0;
  math::wide_uint modulus_;
  std::vector<math::wide_uint> crt_terms_;
  std::vector<u64> crt_weights_;
};

}  // namespace bpntt::rns
