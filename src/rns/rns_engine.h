// Big-modulus polynomial arithmetic on top of bpntt::runtime: one NTT
// workload per RNS limb, fanned out across the chip.
//
// The engine owns the mapping from "one ring product mod M" to "k
// independent word-sized ring products mod q_i" and back:
//
//   rns_engine eng(ctx, rns_basis::with_limb_bits(n, 14, 4));
//   auto c = eng.polymul(a, b);   // a, b, c: canonical mod M, wide_uint
//
// Each limb rides the context's dedicated limb stream for its prime
// (context::rns_stream), so placement is the stream scheduler's
// topology-aware policy: on a multi-channel device every limb gets its own
// channel and the limb dispatch groups genuinely overlap (combined
// makespan below the serial per-limb sum); on a flat device the limb
// groups fall back to back-to-back batched dispatch on the shared banks.
// Either way outputs are bit-identical — the schedule only moves cycles.
//
// Forward/inverse transforms of residue-form polynomials fan out the same
// way, so a caller staying in the residue domain (FHE-style pipelines: one
// decompose, many products, one lift) pays the CRT exactly twice.
#pragma once

#include <optional>
#include <vector>

#include "rns/rns_basis.h"
#include "rns/rns_poly.h"
#include "runtime/context.h"

namespace bpntt::rns {

// Aggregate view of one limb fan-out, for benches and overlap tests:
// serial_cycles is what the limbs would cost back-to-back, the context's
// scheduler_stats::wall_cycles delta tells what they cost overlapped.
struct fanout_stats {
  u64 serial_cycles = 0;  // sum of per-limb dispatch wall-clocks
  u64 limb_jobs = 0;      // runtime jobs the fan-out produced
};

class rns_engine {
 public:
  // The basis' order must match the context ring's n, and every limb prime
  // must be admissible as a ring override (context::stream validates each
  // on first use; the constructor validates eagerly so a bad pairing fails
  // here, not at the first product).
  rns_engine(runtime::context& ctx, rns_basis basis);

  [[nodiscard]] const rns_basis& basis() const noexcept { return basis_; }
  // Stats of the most recent fan-out (polymul/forward/inverse call).
  [[nodiscard]] const fanout_stats& last_fanout() const noexcept { return last_; }

  // c = a * b mod (x^n + 1, M).  Coefficients canonical mod M at
  // basis().wide_bits() width; decomposes, fans out one word-sized product
  // per limb, recombines exactly via CRT.
  [[nodiscard]] std::vector<math::wide_uint> polymul(
      const std::vector<math::wide_uint>& a, const std::vector<math::wide_uint>& b);

  // Residue-domain product: same fan-out, no CRT at either end.
  [[nodiscard]] rns_poly polymul(const rns_poly& a, const rns_poly& b);

  // Modulus switching: round(x / q_last) in the dropped basis
  // (basis().drop_last()), computed limb-by-limb as one rns_rescale_job
  // per kept limb on that limb's dedicated stream — the exact
  // divide-and-round the leveled-HE rescale after every multiply needs.
  // The result carries limbs() - 1 residue polynomials and is canonical in
  // the smaller basis; it is bit-identical to lifting x, dividing by the
  // dropped prime with wide_uint::divround, and re-decomposing.  Throws
  // std::invalid_argument on a one-limb basis or a limb-count mismatch.
  //
  // With congruence = t >= 2 (the BGV-style plaintext-preserving switch),
  // the correction divided out is chosen congruent to 0 mod t, so the
  // output satisfies out == x * q_drop^{-1} (mod t) — what a leveled
  // scheme's modulus switch needs to keep the message residue intact.  t
  // must be coprime to the dropped prime.  0 (the default) and 1 are the
  // plain round-to-nearest.
  [[nodiscard]] rns_poly rescale(const rns_poly& p, u64 congruence = 0);

  // RNS base extension — the dual of rescale: lift p's residues from this
  // basis Q to the larger basis `target` (Q must be a strict prefix of
  // target), producing the residues of the exact canonical lift [x]_M mod
  // each new limb as one rns_base_extend_job per new limb on that limb's
  // dedicated stream.  The multiply-accumulate headroom primitive key
  // switching builds on.  Source residues are copied through unchanged;
  // the result carries target.limbs() residue polynomials in target's limb
  // order.  Throws std::invalid_argument when target diverges from this
  // chain (naming the first mismatching prime) or does not grow it.
  [[nodiscard]] rns_poly base_extend(const rns_poly& p, const rns_basis& target);

  // The fused leveled-multiply step: c = rescale(a * b) as one submission
  // — the limb products fan out and overlap, their outputs feed the
  // rescale fan-out, and the result lives one level down.  Residue form in
  // this basis in, residue form in basis().drop_last() out.
  [[nodiscard]] rns_poly modswitch_polymul(const rns_poly& a, const rns_poly& b);
  // Wide-coefficient convenience: canonical mod M in, canonical mod
  // M/q_last out (at drop_last().wide_bits() width).
  [[nodiscard]] std::vector<math::wide_uint> modswitch_polymul(
      const std::vector<math::wide_uint>& a, const std::vector<math::wide_uint>& b);

  // The basis one rescale lands in, built on first use and cached.
  [[nodiscard]] const rns_basis& dropped_basis();

  // Per-limb forward/inverse NTT of a residue-form polynomial (forward:
  // standard order in, bit-reversed out; inverse the converse — the golden
  // transform's ordering contract, per limb).
  [[nodiscard]] rns_poly forward(const rns_poly& p);
  [[nodiscard]] rns_poly inverse(const rns_poly& p);

  // The CRT ends, exposed for callers staying in residue form.
  [[nodiscard]] rns_poly lower(const std::vector<math::wide_uint>& coeffs) const;
  [[nodiscard]] std::vector<math::wide_uint> lift(const rns_poly& p) const;

 private:
  // Flush every limb stream (so the limb groups enter the scheduler
  // together and can overlap), wait on the per-limb ids in chain order,
  // and collect outputs + fan-out stats.
  [[nodiscard]] std::vector<std::vector<u64>> collect(const std::vector<runtime::job_id>& ids);
  // Same, flushing an explicit prime set (base extension flushes the new
  // limbs' streams, which are outside this engine's basis).
  [[nodiscard]] std::vector<std::vector<u64>> collect_on(
      const std::vector<u64>& flush_primes, const std::vector<runtime::job_id>& ids);
  // One per-limb ntt_job fan-out in the given direction.
  [[nodiscard]] rns_poly transform(const rns_poly& p, core::transform_dir dir,
                                   const char* what);
  void require_limbs(const rns_poly& p, const char* what) const;

  runtime::context& ctx_;
  rns_basis basis_;
  fanout_stats last_;
  // Lazily-built rescale target (basis_ minus its last limb).
  std::optional<rns_basis> dropped_;
};

}  // namespace bpntt::rns
