// Residue-domain polynomials: one big-coefficient polynomial carried as k
// word-sized residue polynomials (one per RNS limb), plus the exact CRT
// lift back.
//
// Decomposition is a per-coefficient word reduction (x mod q_i);
// recombination uses the basis' precomputed CRT constants with *lazy*
// reduction: the per-limb terms t_i * M_i (each < M) accumulate without
// intermediate mod-M reductions — the accumulator stays below k*M, inside
// the basis' working width — and a single conditional-subtract pass at the
// end produces the canonical value.  That is the wide-width analogue of
// the lazy Barrett/Montgomery style the word-sized kernels use.
#pragma once

#include <span>
#include <vector>

#include "rns/rns_basis.h"

namespace bpntt::rns {

// One polynomial of the big-modulus ring Z_M[x]/(x^n + 1) in residue form:
// residues[i] is the image in Z_{q_i}[x]/(x^n + 1), coefficient-canonical.
struct rns_poly {
  std::vector<std::vector<u64>> residues;

  [[nodiscard]] std::size_t limbs() const noexcept { return residues.size(); }
};

// Split big coefficients (canonical, < M) into per-limb residue
// polynomials.  Throws std::invalid_argument on a coefficient >= M or a
// width other than basis.wide_bits().
[[nodiscard]] rns_poly rns_decompose(std::span<const math::wide_uint> coeffs,
                                     const rns_basis& basis);

// Exact CRT lift of a residue-form polynomial back to canonical big
// coefficients at basis.wide_bits() width.  Throws std::invalid_argument
// on a limb-count or length mismatch.
[[nodiscard]] std::vector<math::wide_uint> rns_recombine(const rns_poly& p,
                                                         const rns_basis& basis);

// O(n^2) big-modulus negacyclic product over wide_uint: the oracle the
// RNS engine (and its differential tests) are checked against.  Operands
// must be canonical mod `m` at m.bits() width.
[[nodiscard]] std::vector<math::wide_uint> schoolbook_negacyclic_wide(
    std::span<const math::wide_uint> a, std::span<const math::wide_uint> b,
    const math::wide_uint& m);

}  // namespace bpntt::rns
