#include "rns/rns_basis.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/bitutil.h"
#include "nttmath/primes.h"

namespace bpntt::rns {

rns_basis::rns_basis(u64 n, std::vector<u64> primes) : n_(n), primes_(std::move(primes)) {
  if (!common::is_power_of_two(n_) || n_ < 2) {
    throw std::invalid_argument("rns_basis: n must be a power of two >= 2");
  }
  if (primes_.empty()) {
    throw std::invalid_argument("rns_basis: the prime chain must not be empty");
  }
  unsigned sum_bits = 0;
  for (std::size_t i = 0; i < primes_.size(); ++i) {
    const u64 q = primes_[i];
    if ((q & 1ULL) == 0 || !math::is_prime(q)) {
      throw std::invalid_argument("rns_basis: limb " + std::to_string(i) + " modulus " +
                                  std::to_string(q) + " is not an odd prime");
    }
    if (q >= (1ULL << 62)) {
      throw std::invalid_argument("rns_basis: limb " + std::to_string(i) + " modulus " +
                                  std::to_string(q) + " exceeds the word-sized limb range");
    }
    if ((q - 1) % (2 * n_) != 0) {
      throw std::invalid_argument(
          "rns_basis: limb " + std::to_string(i) + " prime " + std::to_string(q) +
          " does not support negacyclic NTTs of size n = " + std::to_string(n_) +
          " (needs q == 1 mod 2n)");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (primes_[j] == q) {
        throw std::invalid_argument("rns_basis: duplicate prime " + std::to_string(q) +
                                    " at limbs " + std::to_string(j) + " and " +
                                    std::to_string(i) +
                                    " (distinct primes are what makes the chain coprime)");
      }
    }
    sum_bits += common::bit_length(q);
  }

  // First pass at the sum of limb widths to learn M's exact bit length,
  // then settle the working width: the lazily-reduced CRT accumulator
  // reaches k*M, and the double-and-add oracle wants m < 2^(bits-1).
  math::wide_uint m(sum_bits, 1);
  for (const u64 q : primes_) m = m.mul_u64(q);
  modulus_bits_ = sum_bits;
  while (modulus_bits_ > 1 && !m.bit(modulus_bits_ - 1)) --modulus_bits_;
  unsigned lazy_bits = 0;
  while ((1ULL << lazy_bits) < primes_.size()) ++lazy_bits;
  wide_bits_ = modulus_bits_ + lazy_bits + 1;

  modulus_ = m.resized(wide_bits_);
  crt_terms_.reserve(primes_.size());
  crt_weights_.reserve(primes_.size());
  for (const u64 q : primes_) {
    // M_i = M / q_i — the divmod path CRT reconstruction leans on (the
    // remainder doubles as a sanity check that q_i really divides M).
    const math::wide_divmod dm = modulus_.divmod(math::wide_uint(64, q));
    if (!dm.rem.is_zero()) {
      throw std::logic_error("rns_basis: internal error, limb prime does not divide M");
    }
    const u64 mi_mod_q = dm.quot.mod_u64(q);
    const u64 weight = math::inv_mod(mi_mod_q, q);
    if (weight == 0) {
      throw std::logic_error("rns_basis: internal error, CRT term not invertible mod limb");
    }
    crt_terms_.push_back(dm.quot);
    crt_weights_.push_back(weight);
  }
}

rns_basis rns_basis::with_limb_bits(u64 n, unsigned limb_bits, unsigned limbs) {
  return rns_basis(n, math::first_k_ntt_primes(limb_bits, n, limbs, /*negacyclic=*/true));
}

rns_basis rns_basis::drop_last() const {
  if (primes_.size() < 2) {
    throw std::invalid_argument(
        "rns_basis: drop_last on a one-limb chain — there is no smaller basis to switch to");
  }
  return rns_basis(n_, std::vector<u64>(primes_.begin(), primes_.end() - 1));
}

rns_basis rns_basis::switch_to(const rns_basis& other) const {
  if (other.n() != n_) {
    throw std::invalid_argument("rns_basis: switch_to target has ring order n = " +
                                std::to_string(other.n()) + ", this basis has n = " +
                                std::to_string(n_));
  }
  // Divergence is diagnosed before length so a wrong-chain target names the
  // first limb that actually differs instead of a generic limb-count error.
  const std::size_t shared = std::min(other.limbs(), primes_.size());
  for (std::size_t i = 0; i < shared; ++i) {
    if (other.prime(i) != primes_[i]) {
      throw std::invalid_argument(
          "rns_basis: switch_to target limb " + std::to_string(i) + " is prime " +
          std::to_string(other.prime(i)) + ", this chain's is " + std::to_string(primes_[i]) +
          " (a rescale chain sheds limbs from the tail, so the target must be a prefix)");
    }
  }
  if (other.limbs() >= primes_.size()) {
    throw std::invalid_argument(
        "rns_basis: switch_to target carries " + std::to_string(other.limbs()) +
        " limbs, not fewer than this chain's " + std::to_string(primes_.size()) +
        " (modulus switching only ever shrinks the chain)");
  }
  return rns_basis(n_, std::vector<u64>(primes_.begin(), primes_.begin() + other.limbs()));
}

}  // namespace bpntt::rns
