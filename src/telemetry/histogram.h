// Fixed-bucket latency histogram — the tail-latency lens shared by the
// service layer (completion latency) and the telemetry registry
// (queue-wait / execution-time distributions).
//
// Samples land in quarter-octave buckets (HDR-histogram style): values are
// scaled to ~microsecond units (ns >> 10); the first four units get
// unit-wide buckets, and every power-of-two octave above them is split
// into four linear sub-buckets, so bucket width is at most 25% of the
// value — a reported p99 is within one bucket width of the true quantile.
// Bucket 0 absorbs everything below ~1 us and the last bucket everything
// past ~2^39 us (~6.5 days).  Recording is O(1) (one bit-scan + one
// increment), memory is one fixed array — no allocation, no reservoir, no
// decay — and quantiles are exact over the recorded distribution up to
// bucket resolution.
//
// quantile(p) returns the *upper bound* of the bucket holding the p-th
// sample (the conventional conservative read: "p99 <= reported value" at
// bucket granularity).  Histograms merge by bucket-wise addition, which is
// how per-session histograms roll up into the service-wide one.
//
// Not internally synchronized: callers record under their own lock (the
// service under its stats lock, the registry under the histogram cell's
// mutex).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace bpntt::telemetry {

class latency_histogram {
 public:
  static constexpr std::size_t kBucketsPerOctave = 4;
  static constexpr std::size_t kOctaves = 38;  // ~1 us granules up to ~2^39 us
  static constexpr std::size_t kBuckets = kBucketsPerOctave * kOctaves;

  // Record one sample in nanoseconds.
  void record_ns(std::uint64_t ns) noexcept;

  // The upper bound (in nanoseconds) of the bucket holding the sample at
  // quantile p in [0, 1]; 0 when the histogram is empty.  p = 0.5 / 0.95 /
  // 0.99 are the conventional p50/p95/p99.
  [[nodiscard]] std::uint64_t quantile_ns(double p) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_ns_; }

  // Bucket-wise merge (per-session histograms -> the global one).
  latency_histogram& operator+=(const latency_histogram& other) noexcept;

  // The bucket index a sample lands in, and a bucket's upper bound —
  // exposed so tests can pin the bucketing contract.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper_ns(std::size_t bucket) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace bpntt::telemetry
