// Chrome trace-event JSON export: turn a trace_recorder's event buffer
// into a file Perfetto / chrome://tracing opens directly.
//
// Row mapping follows the chip topology: every *channel* becomes a trace
// process (pid = channel index, named "channel N") and every *bank* a
// thread inside it (tid = global bank id, named "bank N"), so dispatch
// spans lay out exactly like the hardware — one row per bank, spans
// showing which dispatch held the bank over which virtual-time interval.
// Scheduler lifecycle events (enqueue, claim, merge, yield, deadline
// miss), operand-cache hits/misses, backend batch marks and service
// ticket marks land on synthetic processes after the channels.  Counter
// tracks ("C" events) are emitted for operand-cache hits/misses, deadline
// misses and ready-queue depth, so the aggregate story rides above the
// per-bank spans.
//
// Timestamps: the virtual timeline's cycles are written 1:1 into the
// trace's microsecond field — a cycle reads as a "µs" in the UI.  The
// timeline is the scheduler's, not wall time; what matters is relative
// extent, and cycles-as-µs keeps every number exact (no division, no
// rounding), so the reconstructed makespan — the max span end across bank
// rows — equals scheduler_stats::wall_cycles exactly.
#pragma once

#include <iosfwd>
#include <vector>

#include "telemetry/trace.h"

namespace bpntt::telemetry {

// The topology facts the exporter needs to map tracks to pid/tid rows.
struct trace_export_layout {
  unsigned banks = 1;              // global bank count (spans' track ids)
  unsigned banks_per_channel = 1;  // pid = bank / banks_per_channel
};

// Write the events as one Chrome trace-event JSON document:
//   {"displayTimeUnit":"ns","traceEvents":[...]}
// Events should be ts-sorted (trace_recorder::snapshot_events() already
// is); metadata rows naming processes/threads are emitted first.
void write_chrome_trace(std::ostream& os, const std::vector<trace_event>& events,
                        const trace_export_layout& layout);

}  // namespace bpntt::telemetry
