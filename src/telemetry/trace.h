// bpntt::telemetry::trace_recorder — a bounded, lock-free span recorder
// for the runtime's virtual timeline.
//
// Aggregate counters say *that* a soak run missed deadlines or stopped
// merging; a trace says *which dispatch on which bank* did it.  Every
// layer that already computes virtual-timeline positions (the scheduler's
// per-bank frontiers, the context's distribution paths) stamps fixed-size
// trace_event records here; export_trace() turns the buffer into Chrome
// trace-event JSON that opens directly in Perfetto.
//
// Design (per-producer rings, in the style of service/mpsc_queue.h):
// recording threads — the client thread, the executor pool, the service
// drainer — each own a private SPSC ring of power-of-two capacity.
// record() is wait-free on the hot path: locate the calling thread's ring
// (one thread-local compare in the common case), write the slot, bump the
// tail.  A full ring *drops its oldest event* and counts it in
// events_dropped() — tracing is an observability aid, it must never block
// or unboundedly allocate under load.  Producer slots are handed out by an
// atomic counter; past kMaxProducers additional threads' events are
// dropped (and counted) rather than contended over.
//
// Virtual-time watermark: layers that do not see frontier values flow past
// them (the operand cache, backend batch hooks) stamp instants at
// watermark() — the highest virtual time the scheduler has accounted so
// far, maintained via set_watermark(). It is monotonic and approximate by
// construction; spans, which carry exact start/duration, never use it.
//
// Threading contract: record(), set_watermark() and the counter probes
// (events_recorded / events_dropped / watermark) are safe from any thread
// at any time.  snapshot_events() and clear() are *quiescent-only*: call
// them after the producing context has gone idle (sync()/wait_all(), pool
// joined behind a flush) — they read the producer-owned ring cursors
// without synchronization, relying on the caller's happens-before edge.
// This is the same contract as context::export_trace(), whose
// documentation repeats it.
//
// The disabled path is zero-cost by absence: a context without
// runtime_options::with_tracing() holds no recorder at all — every
// instrumentation site is a null-pointer test, no ring is allocated, no
// event is ever constructed.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bpntt::telemetry {

using u64 = std::uint64_t;
using u32 = std::uint32_t;

// What an event marks.  Span ops ride bank tracks with an exact
// [ts, ts+dur) extent on the virtual timeline; the rest are instants or
// counter samples on the synthetic tracks below.
enum class trace_op : std::uint8_t {
  // Dispatch spans (track = bank id, dur = batch wall_cycles).
  ntt_forward = 0,
  ntt_inverse,
  polymul,
  rlwe_stage,
  rescale,
  base_extend,
  // Scheduler lifecycle instants (track = kTrackScheduler).
  group_enqueue,
  bank_claim,
  merge_absorb,
  preempt_yield,
  deadline_miss,
  // Operand-cache instants (track = kTrackCache).
  cache_hit,
  cache_miss,
  // Backend execution instants (track = kTrackBackend; a = wall_cycles).
  backend_batch,
  // Service ticket instants (track = kTrackService; a = queue-wait ns).
  ticket_admit,
  ticket_complete,
  // Counter sample (track = kTrackScheduler; a = ready-queue depth).
  queue_depth,
  // Residency lifecycle instants (track = kTrackCache; arg = bank).
  resident_evict,
  resident_pin,
  resident_unpin,
  resident_move,
  // Scheduler claimed a bank already holding the group's limb (track =
  // kTrackScheduler; a = group seq).
  affinity_hit,
  // Counter sample (track = kTrackCache; a = device rows reserved).
  resident_rows,
};

[[nodiscard]] const char* to_string(trace_op op) noexcept;

// Synthetic track ids for events that do not belong to a hardware bank.
// Bank spans use track = global bank id (always far below these).
inline constexpr u32 kTrackScheduler = 0xFFFFFF00u;
inline constexpr u32 kTrackCache = 0xFFFFFF01u;
inline constexpr u32 kTrackBackend = 0xFFFFFF02u;
inline constexpr u32 kTrackService = 0xFFFFFF03u;

// One fixed-size record.  POD by design: ring slots are preallocated and
// recording is a struct copy — no allocation, no indirection.
struct trace_event {
  u64 ts = 0;     // virtual-time start (cycles)
  u64 dur = 0;    // span extent in cycles; 0 for instants / counter samples
  u64 a = 0;      // op-specific payload (job count, counter value, ns, ...)
  u32 track = 0;  // bank id, or one of the kTrack* synthetic tracks
  u32 arg = 0;    // group seq / stream id / session id for display
  trace_op op = trace_op::ntt_forward;
};

class trace_recorder {
 public:
  static constexpr std::size_t kMaxProducers = 64;
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  // capacity = events retained *per producer thread*; rounded up to a
  // power of two (minimum 2 — a one-slot ring cannot distinguish full
  // from empty under the cursor scheme, same floor as mpsc_queue).
  explicit trace_recorder(std::size_t capacity = kDefaultCapacity);

  trace_recorder(const trace_recorder&) = delete;
  trace_recorder& operator=(const trace_recorder&) = delete;

  // Wait-free on the hot path; drops the ring's oldest event when full.
  void record(const trace_event& e) noexcept;

  // Cumulative events accepted into a ring (drops excluded) / dropped
  // (ring overflow + producers past kMaxProducers).  Any thread.
  [[nodiscard]] u64 events_recorded() const noexcept;
  [[nodiscard]] u64 events_dropped() const noexcept;

  // Monotonic virtual-time high-water mark (see header comment).
  void set_watermark(u64 vtime) noexcept;
  [[nodiscard]] u64 watermark() const noexcept;

  [[nodiscard]] std::size_t capacity_per_producer() const noexcept { return cap_; }

  // Quiescent-only: merge every ring's retained events, sorted by ts
  // (stable: producer order preserved within a tick).  Non-destructive —
  // exporting a trace does not consume it.
  [[nodiscard]] std::vector<trace_event> snapshot_events() const;

  // Quiescent-only: discard retained events (drop/record counters are
  // cumulative and survive).
  void clear() noexcept;

 private:
  struct ring {
    std::vector<trace_event> slots;
    // Producer-owned cursors: head = oldest retained, tail = next write.
    // Only the owning thread touches them while recording; snapshot reads
    // rely on the quiescent contract.
    u64 head = 0;
    u64 tail = 0;
    std::atomic<u64> recorded{0};
    std::atomic<u64> dropped{0};
  };

  static constexpr unsigned kNoSlot = ~0u;

  // The calling thread's ring slot, registering it on first use.
  [[nodiscard]] unsigned slot_of_this_thread() noexcept;

  const std::size_t cap_;   // power of two
  const u64 recorder_id_;   // distinguishes recorders in the thread-local cache
  std::atomic<unsigned> next_slot_{0};
  std::atomic<u64> unslotted_dropped_{0};
  std::atomic<u64> watermark_{0};
  std::array<ring, kMaxProducers> rings_;
};

}  // namespace bpntt::telemetry
