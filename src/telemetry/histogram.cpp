#include "telemetry/histogram.h"

#include <algorithm>
#include <bit>

namespace bpntt::telemetry {

namespace {

// Samples are bucketed in ~microsecond units: ns >> kUnitShift.  1024 ns
// "microseconds" keep every boundary a shift, no division anywhere.
constexpr unsigned kUnitShift = 10;

}  // namespace

std::size_t latency_histogram::bucket_of(std::uint64_t ns) noexcept {
  const std::uint64_t u = ns >> kUnitShift;
  // The first octaves are narrower than four units: units 0..3 get their
  // own unit-wide buckets, keeping every boundary exact.
  if (u < kBucketsPerOctave) return static_cast<std::size_t>(u);
  const unsigned msb = static_cast<unsigned>(std::bit_width(u)) - 1;  // >= 2
  // The two bits below the msb pick the linear quarter of the octave.
  const std::size_t bucket = (static_cast<std::size_t>(msb) - 1) * kBucketsPerOctave +
                             static_cast<std::size_t>((u >> (msb - 2)) & 3);
  return std::min(bucket, kBuckets - 1);
}

std::uint64_t latency_histogram::bucket_upper_ns(std::size_t bucket) noexcept {
  bucket = std::min(bucket, kBuckets - 1);
  if (bucket < kBucketsPerOctave) {
    return static_cast<std::uint64_t>(bucket + 1) << kUnitShift;
  }
  const std::size_t msb = bucket / kBucketsPerOctave + 1;
  const std::size_t sub = bucket % kBucketsPerOctave;
  const std::uint64_t upper_u =
      (1ULL << msb) + (static_cast<std::uint64_t>(sub + 1) << (msb - 2));
  return upper_u << kUnitShift;
}

void latency_histogram::record_ns(std::uint64_t ns) noexcept {
  ++counts_[bucket_of(ns)];
  ++count_;
  max_ns_ = std::max(max_ns_, ns);
}

std::uint64_t latency_histogram::quantile_ns(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // The rank of the quantile sample, 1-based: ceil(p * count), at least 1.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(p * static_cast<double>(count_) + 0.9999999));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // The top bucket is open-ended; the recorded maximum is the honest
      // bound there.
      return b == kBuckets - 1 ? max_ns_ : std::min(bucket_upper_ns(b), max_ns_);
    }
  }
  return max_ns_;
}

latency_histogram& latency_histogram::operator+=(const latency_histogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  max_ns_ = std::max(max_ns_, other.max_ns_);
  return *this;
}

}  // namespace bpntt::telemetry
