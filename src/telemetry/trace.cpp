#include "telemetry/trace.h"

#include <algorithm>
#include <bit>

namespace bpntt::telemetry {

const char* to_string(trace_op op) noexcept {
  switch (op) {
    case trace_op::ntt_forward: return "ntt_forward";
    case trace_op::ntt_inverse: return "ntt_inverse";
    case trace_op::polymul: return "polymul";
    case trace_op::rlwe_stage: return "rlwe_stage";
    case trace_op::rescale: return "rescale";
    case trace_op::base_extend: return "base_extend";
    case trace_op::group_enqueue: return "group_enqueue";
    case trace_op::bank_claim: return "bank_claim";
    case trace_op::merge_absorb: return "merge_absorb";
    case trace_op::preempt_yield: return "preempt_yield";
    case trace_op::deadline_miss: return "deadline_miss";
    case trace_op::cache_hit: return "cache_hit";
    case trace_op::cache_miss: return "cache_miss";
    case trace_op::backend_batch: return "backend_batch";
    case trace_op::ticket_admit: return "ticket_admit";
    case trace_op::ticket_complete: return "ticket_complete";
    case trace_op::queue_depth: return "queue_depth";
    case trace_op::resident_evict: return "resident_evict";
    case trace_op::resident_pin: return "resident_pin";
    case trace_op::resident_unpin: return "resident_unpin";
    case trace_op::resident_move: return "resident_move";
    case trace_op::affinity_hit: return "affinity_hit";
    case trace_op::resident_rows: return "resident_rows";
  }
  return "unknown";
}

namespace {

// Thread-local producer-slot cache.  One entry per (recorder, thread) pair
// this thread has recorded into; recorders are identified by a unique id
// (never a reused address).  The common case — one live traced context —
// hits `last` with a single compare.  The vector is trimmed if a thread
// outlives many recorders; losing a mapping merely re-registers the thread
// into a fresh slot (the abandoned ring is never written again, so the
// SPSC ownership invariant holds).
struct tl_slot_entry {
  u64 recorder_id = 0;
  unsigned slot = 0;
};

thread_local tl_slot_entry tl_last{};
thread_local std::vector<tl_slot_entry> tl_slots;

std::atomic<u64> g_next_recorder_id{1};

constexpr std::size_t kTlTrim = 64;

std::size_t round_up_pow2(std::size_t v) {
  if (v < 2) return 2;
  return std::bit_ceil(v);
}

}  // namespace

trace_recorder::trace_recorder(std::size_t capacity)
    : cap_(round_up_pow2(capacity)),
      recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
  for (ring& r : rings_) r.slots.resize(cap_);
}

unsigned trace_recorder::slot_of_this_thread() noexcept {
  if (tl_last.recorder_id == recorder_id_) return tl_last.slot;
  for (const tl_slot_entry& e : tl_slots) {
    if (e.recorder_id == recorder_id_) {
      tl_last = e;
      return e.slot;
    }
  }
  // First record from this thread: claim a ring (or learn that none are
  // left and remember that, so the overflow path stays one compare too).
  const unsigned claimed = next_slot_.fetch_add(1, std::memory_order_relaxed);
  const unsigned slot = claimed < kMaxProducers ? claimed : kNoSlot;
  if (tl_slots.size() >= kTlTrim) {
    tl_slots.erase(tl_slots.begin(), tl_slots.begin() + static_cast<std::ptrdiff_t>(kTlTrim / 2));
  }
  tl_slots.push_back({recorder_id_, slot});
  tl_last = tl_slots.back();
  return slot;
}

void trace_recorder::record(const trace_event& e) noexcept {
  const unsigned slot = slot_of_this_thread();
  if (slot == kNoSlot) {
    unslotted_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring& r = rings_[slot];
  if (r.tail - r.head == cap_) {
    // Full: drop the oldest retained event, keep the newest.
    ++r.head;
    r.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  r.slots[r.tail & (cap_ - 1)] = e;
  ++r.tail;
  r.recorded.fetch_add(1, std::memory_order_relaxed);
}

u64 trace_recorder::events_recorded() const noexcept {
  u64 total = 0;
  for (const ring& r : rings_) total += r.recorded.load(std::memory_order_relaxed);
  return total;
}

u64 trace_recorder::events_dropped() const noexcept {
  u64 total = unslotted_dropped_.load(std::memory_order_relaxed);
  for (const ring& r : rings_) total += r.dropped.load(std::memory_order_relaxed);
  return total;
}

void trace_recorder::set_watermark(u64 vtime) noexcept {
  u64 cur = watermark_.load(std::memory_order_relaxed);
  while (cur < vtime &&
         !watermark_.compare_exchange_weak(cur, vtime, std::memory_order_relaxed)) {
  }
}

u64 trace_recorder::watermark() const noexcept {
  return watermark_.load(std::memory_order_relaxed);
}

std::vector<trace_event> trace_recorder::snapshot_events() const {
  std::vector<trace_event> out;
  for (const ring& r : rings_) {
    for (u64 i = r.head; i != r.tail; ++i) out.push_back(r.slots[i & (cap_ - 1)]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const trace_event& a, const trace_event& b) { return a.ts < b.ts; });
  return out;
}

void trace_recorder::clear() noexcept {
  for (ring& r : rings_) r.head = r.tail;
}

}  // namespace bpntt::telemetry
