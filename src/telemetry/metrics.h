// bpntt::telemetry::metrics_registry — one named home for every counter,
// gauge and distribution the stack publishes.
//
// Before this module each layer kept private tallies and every snapshot
// surface (context::stats(), service_stats, bench JSON writers) copied
// them field by field — a counter added in one place could silently read
// zero in another.  The registry inverts that: instruments are *registered
// once at construction* (make_counter("runtime.jobs_submitted"), ...) and
// the owning layer holds a stable reference it updates on the hot path;
// snapshots and JSON artifacts are derived views over the single store.
//
//   telemetry::metrics_registry reg;
//   auto& submitted = reg.make_counter("service.submitted");
//   submitted.add();                        // lock-free, any thread
//   reg.make_histogram("service.latency_ns").record(ns);
//   std::string doc = reg.to_json();        // {"counters":{...},...}
//
// Instrument semantics:
//   counter    — monotonically increasing u64 (relaxed atomic add).
//   gauge      — last-written u64, plus set_max() for high-water marks
//                (the virtual-timeline makespan is a gauge, not a counter).
//   real_accum — accumulating double (energy totals); C++20 atomic
//                fetch_add(double).
//   histogram  — a quarter-octave latency_histogram behind a per-cell
//                mutex (recording is a lock + O(1) bucket increment; the
//                cell lock is never held across user code).
//
// Threading contract: make_* registration is mutex-guarded and may run
// from any thread; the returned references are stable for the registry's
// lifetime (cells are heap-allocated, the map only holds pointers).
// Updates through counter/gauge/real references are lock-free;
// histogram_cell::record takes the cell's own mutex.  Snapshots (value
// reads, to_json) are safe from any thread and see each instrument's
// latest relaxed value — coherent enough for monitoring, not a
// linearizable cross-instrument cut.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "telemetry/histogram.h"

namespace bpntt::telemetry {

using u64 = std::uint64_t;

class counter {
 public:
  void add(u64 n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

class gauge {
 public:
  void set(u64 v) noexcept { v_.store(v, std::memory_order_relaxed); }
  // Monotonic high-water update (CAS loop; lock-free).
  void set_max(u64 v) noexcept {
    u64 cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] u64 value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

class real_accum {
 public:
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// A latency_histogram behind its own mutex, so concurrent recorders (pool
// threads, the service drainer, client threads) can share one distribution.
class histogram_cell {
 public:
  void record(u64 ns) noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    h_.record_ns(ns);
  }
  [[nodiscard]] latency_histogram snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return h_;
  }

 private:
  mutable std::mutex mu_;
  latency_histogram h_;
};

class metrics_registry {
 public:
  metrics_registry() = default;
  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

  // Get-or-create by name.  Registering a name that already exists returns
  // the existing instrument; registering it as a *different kind* throws
  // std::logic_error (one name, one meaning).
  counter& make_counter(const std::string& name);
  gauge& make_gauge(const std::string& name);
  real_accum& make_real(const std::string& name);
  histogram_cell& make_histogram(const std::string& name);

  // Lookup without creation (nullptr when absent) — for snapshot readers
  // that must not mint instruments as a side effect.
  [[nodiscard]] const counter* find_counter(const std::string& name) const;
  [[nodiscard]] const gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const real_accum* find_real(const std::string& name) const;
  [[nodiscard]] const histogram_cell* find_histogram(const std::string& name) const;

  // Convenience value reads: the instrument's current value, or 0 when the
  // name was never registered.
  [[nodiscard]] u64 counter_value(const std::string& name) const;
  [[nodiscard]] u64 gauge_value(const std::string& name) const;
  [[nodiscard]] double real_value(const std::string& name) const;

  // One JSON document over everything registered, name-sorted:
  //   {"counters":{...},"gauges":{...},"reals":{...},
  //    "histograms":{"name":{"count":N,"p50_ns":..,"p95_ns":..,
  //                          "p99_ns":..,"max_ns":..},...}}
  [[nodiscard]] std::string to_json() const;

 private:
  enum class kind { counter_k, gauge_k, real_k, histogram_k };
  void claim_name(const std::string& name, kind k);

  mutable std::mutex mu_;  // guards the maps; instrument updates never take it
  std::map<std::string, kind> kinds_;
  std::map<std::string, std::unique_ptr<counter>> counters_;
  std::map<std::string, std::unique_ptr<gauge>> gauges_;
  std::map<std::string, std::unique_ptr<real_accum>> reals_;
  std::map<std::string, std::unique_ptr<histogram_cell>> histograms_;
};

}  // namespace bpntt::telemetry
