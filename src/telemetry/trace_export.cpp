#include "telemetry/trace_export.h"

#include <ostream>
#include <string>

namespace bpntt::telemetry {

namespace {

// Synthetic processes follow the channel pids.
struct pid_map {
  unsigned channels = 1;
  unsigned banks_per_channel = 1;
  [[nodiscard]] unsigned scheduler() const { return channels; }
  [[nodiscard]] unsigned cache() const { return channels + 1; }
  [[nodiscard]] unsigned backend() const { return channels + 2; }
  [[nodiscard]] unsigned service() const { return channels + 3; }

  [[nodiscard]] unsigned pid_of(u32 track) const {
    switch (track) {
      case kTrackScheduler: return scheduler();
      case kTrackCache: return cache();
      case kTrackBackend: return backend();
      case kTrackService: return service();
      default: return track / banks_per_channel;  // a bank id
    }
  }
};

class json_writer {
 public:
  explicit json_writer(std::ostream& os) : os_(os) {}

  void begin() { os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["; }
  void end() { os_ << "]}\n"; }

  void open_event() {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << '{';
    first_field_ = true;
  }
  void close_event() { os_ << '}'; }

  void field(const char* key, const std::string& str) {
    sep();
    os_ << '"' << key << "\":\"" << str << '"';
  }
  void field(const char* key, u64 v) {
    sep();
    os_ << '"' << key << "\":" << v;
  }
  void raw_field(const char* key, const std::string& raw) {
    sep();
    os_ << '"' << key << "\":" << raw;
  }

 private:
  void sep() {
    if (!first_field_) os_ << ',';
    first_field_ = false;
  }
  std::ostream& os_;
  bool first_ = true;
  bool first_field_ = true;
};

void meta_row(json_writer& w, const char* which, unsigned pid, unsigned tid,
              const std::string& name) {
  w.open_event();
  w.field("name", std::string(which));
  w.field("ph", std::string("M"));
  w.field("pid", static_cast<u64>(pid));
  w.field("tid", static_cast<u64>(tid));
  w.raw_field("args", "{\"name\":\"" + name + "\"}");
  w.close_event();
}

void instant(json_writer& w, const trace_event& e, unsigned pid) {
  w.open_event();
  w.field("name", std::string(to_string(e.op)));
  w.field("ph", std::string("i"));
  w.field("s", std::string("t"));
  w.field("ts", e.ts);
  w.field("pid", static_cast<u64>(pid));
  w.field("tid", static_cast<u64>(0));
  w.raw_field("args", "{\"seq\":" + std::to_string(e.arg) + ",\"value\":" +
                          std::to_string(e.a) + "}");
  w.close_event();
}

void counter_sample(json_writer& w, const char* name, u64 ts, unsigned pid,
                    const std::string& args) {
  w.open_event();
  w.field("name", std::string(name));
  w.field("ph", std::string("C"));
  w.field("ts", ts);
  w.field("pid", static_cast<u64>(pid));
  w.raw_field("args", args);
  w.close_event();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<trace_event>& events,
                        const trace_export_layout& layout) {
  const unsigned bpc = layout.banks_per_channel == 0 ? 1 : layout.banks_per_channel;
  const unsigned banks = layout.banks == 0 ? 1 : layout.banks;
  const unsigned channels = (banks + bpc - 1) / bpc;
  const pid_map pids{channels, bpc};

  json_writer w(os);
  w.begin();

  // Process/thread naming: channels as processes, banks as their threads.
  for (unsigned c = 0; c < channels; ++c) {
    meta_row(w, "process_name", c, 0, "channel " + std::to_string(c));
  }
  for (unsigned b = 0; b < banks; ++b) {
    meta_row(w, "thread_name", b / bpc, b, "bank " + std::to_string(b));
  }
  meta_row(w, "process_name", pids.scheduler(), 0, "scheduler");
  meta_row(w, "process_name", pids.cache(), 0, "operand cache");
  meta_row(w, "process_name", pids.backend(), 0, "backend");
  meta_row(w, "process_name", pids.service(), 0, "service");

  // Running totals behind the counter tracks.
  u64 cache_hits = 0, cache_misses = 0, deadline_misses = 0;

  for (const trace_event& e : events) {
    switch (e.op) {
      case trace_op::ntt_forward:
      case trace_op::ntt_inverse:
      case trace_op::polymul:
      case trace_op::rlwe_stage:
      case trace_op::rescale:
      case trace_op::base_extend: {
        // A dispatch span on its bank row.
        w.open_event();
        w.field("name", std::string(to_string(e.op)));
        w.field("ph", std::string("X"));
        w.field("ts", e.ts);
        w.field("dur", e.dur);
        w.field("pid", static_cast<u64>(e.track / bpc));
        w.field("tid", static_cast<u64>(e.track));
        w.raw_field("args", "{\"seq\":" + std::to_string(e.arg) + ",\"jobs\":" +
                                std::to_string(e.a) + "}");
        w.close_event();
        break;
      }
      case trace_op::queue_depth:
        counter_sample(w, "queue_depth", e.ts, pids.scheduler(),
                       "{\"ready_groups\":" + std::to_string(e.a) + "}");
        break;
      case trace_op::cache_hit:
      case trace_op::cache_miss: {
        if (e.op == trace_op::cache_hit) {
          ++cache_hits;
        } else {
          ++cache_misses;
        }
        counter_sample(w, "operand_cache", e.ts, pids.cache(),
                       "{\"hits\":" + std::to_string(cache_hits) + ",\"misses\":" +
                           std::to_string(cache_misses) + "}");
        break;
      }
      case trace_op::resident_rows:
        // Device-row occupancy counter track: one sample per residency
        // mutation, so the Perfetto row shows the fill/evict sawtooth.
        counter_sample(w, "resident_rows", e.ts, pids.cache(),
                       "{\"rows\":" + std::to_string(e.a) + "}");
        break;
      case trace_op::deadline_miss:
        ++deadline_misses;
        instant(w, e, pids.pid_of(e.track));
        counter_sample(w, "deadline_misses", e.ts, pids.scheduler(),
                       "{\"misses\":" + std::to_string(deadline_misses) + "}");
        break;
      default:
        instant(w, e, pids.pid_of(e.track));
        break;
    }
  }

  w.end();
}

}  // namespace bpntt::telemetry
