#include "telemetry/metrics.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bpntt::telemetry {

void metrics_registry::claim_name(const std::string& name, kind k) {
  auto [it, inserted] = kinds_.emplace(name, k);
  if (!inserted && it->second != k) {
    throw std::logic_error("metrics_registry: name '" + name +
                           "' already registered as a different instrument kind");
  }
}

counter& metrics_registry::make_counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  claim_name(name, kind::counter_k);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<counter>();
  return *slot;
}

gauge& metrics_registry::make_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  claim_name(name, kind::gauge_k);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<gauge>();
  return *slot;
}

real_accum& metrics_registry::make_real(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  claim_name(name, kind::real_k);
  auto& slot = reals_[name];
  if (!slot) slot = std::make_unique<real_accum>();
  return *slot;
}

histogram_cell& metrics_registry::make_histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  claim_name(name, kind::histogram_k);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<histogram_cell>();
  return *slot;
}

const counter* metrics_registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const gauge* metrics_registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const real_accum* metrics_registry::find_real(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = reals_.find(name);
  return it == reals_.end() ? nullptr : it->second.get();
}

const histogram_cell* metrics_registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

u64 metrics_registry::counter_value(const std::string& name) const {
  const counter* c = find_counter(name);
  return c ? c->value() : 0;
}

u64 metrics_registry::gauge_value(const std::string& name) const {
  const gauge* g = find_gauge(name);
  return g ? g->value() : 0;
}

double metrics_registry::real_value(const std::string& name) const {
  const real_accum* r = find_real(name);
  return r ? r->value() : 0.0;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_real(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string metrics_registry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + std::to_string(g->value());
  }
  out += "},\"reals\":{";
  first = true;
  for (const auto& [name, r] : reals_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + format_real(r->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    const latency_histogram snap = h->snapshot();
    append_json_string(out, name);
    out += ":{\"count\":" + std::to_string(snap.count());
    out += ",\"p50_ns\":" + std::to_string(snap.quantile_ns(0.5));
    out += ",\"p95_ns\":" + std::to_string(snap.quantile_ns(0.95));
    out += ",\"p99_ns\":" + std::to_string(snap.quantile_ns(0.99));
    out += ",\"max_ns\":" + std::to_string(snap.max_ns());
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace bpntt::telemetry
