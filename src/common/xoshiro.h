// Deterministic pseudo-random generator used throughout the project.
//
// All experiments and tests must be reproducible run-to-run, so we avoid
// std::random_device and use the public-domain xoshiro256** generator with
// a splitmix64 seeding sequence (Blackman & Vigna).  The class satisfies
// std::uniform_random_bit_generator and can be plugged into <random>
// distributions.
#pragma once

#include <cstdint>

namespace bpntt::common {

class xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256ss(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 expansion of the 64-bit seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound).  Uses rejection sampling to stay unbiased.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return v % bound;
  }

  constexpr bool coin() noexcept { return ((*this)() & 1ULL) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace bpntt::common
