#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bpntt::common {

text_table::text_table(std::vector<std::string> header) : header_(std::move(header)) {}

void text_table::add_row(std::vector<std::string> cells) {
  rows_.push_back(row{std::move(cells), false});
}

void text_table::add_separator() { rows_.push_back(row{{}, true}); }

std::string text_table::to_string(int indent) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], r.cells[i].size());
    }
  }

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out += pad;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      out += c;
      out.append(widths[i] - c.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  auto emit_sep = [&] {
    out += pad;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      out.append(widths[i], '-');
      if (i + 1 < widths.size()) out += "  ";
    }
    out += '\n';
  };

  emit_row(header_);
  emit_sep();
  for (const auto& r : rows_) {
    if (r.separator) {
      emit_sep();
    } else {
      emit_row(r.cells);
    }
  }
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (std::fabs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%s", precision, scaled, suffix);
  return buf;
}

}  // namespace bpntt::common
