// Small bit-manipulation helpers shared by the math library and the SRAM
// simulator.  Everything is constexpr so tables can be built at compile time.
#pragma once

#include <cstdint>

namespace bpntt::common {

// Number of bits needed to represent v (bit_length(0) == 0).
constexpr unsigned bit_length(std::uint64_t v) noexcept {
  unsigned n = 0;
  while (v != 0) {
    ++n;
    v >>= 1;
  }
  return n;
}

constexpr bool is_power_of_two(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

// log2 of a power of two (undefined for non-powers; callers validate).
constexpr unsigned log2_exact(std::uint64_t v) noexcept {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

// Reverse the low `bits` bits of v (used for NTT bit-reversed ordering).
constexpr std::uint64_t reverse_bits(std::uint64_t v, unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | ((v >> i) & 1ULL);
  }
  return r;
}

// Mask with the low `bits` bits set; bits may be 0..64.
constexpr std::uint64_t low_mask(unsigned bits) noexcept {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

}  // namespace bpntt::common
