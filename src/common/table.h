// Console table printer used by the benchmark harnesses to render the
// paper's tables/figures as aligned text.  Deliberately minimal: columns of
// strings, auto-sized widths, optional separator rows.
#pragma once

#include <string>
#include <vector>

namespace bpntt::common {

class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void add_separator();

  // Render with column padding; `indent` spaces prepended to every line.
  [[nodiscard]] std::string to_string(int indent = 0) const;

 private:
  struct row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<row> rows_;
};

// Format helpers shared by bench binaries.
[[nodiscard]] std::string format_double(double v, int precision = 2);
[[nodiscard]] std::string format_si(double v, int precision = 2);  // 1.2K, 3.4M ...

}  // namespace bpntt::common
