#include "sram/tech_model.h"

#include <cmath>
#include <stdexcept>

namespace bpntt::sram {

tech_params tech_45nm() { return tech_params{}; }

tech_params project_to_node(const tech_params& base, double target_nm) {
  if (target_nm <= 0) throw std::invalid_argument("project_to_node: bad node");
  const double s = target_nm / base.feature_nm;  // >1 means older/larger node
  tech_params t = base;
  t.name = std::to_string(static_cast<int>(target_nm)) + "nm";
  t.feature_nm = target_nm;
  t.cell_area_um2 = base.cell_area_um2 * s * s;
  t.freq_ghz = base.freq_ghz / s;
  t.e_wordline_pj = base.e_wordline_pj * s * s;
  t.e_bitline_fj_per_col = base.e_bitline_fj_per_col * s * s;
  t.e_sense_fj_per_col = base.e_sense_fj_per_col * s * s;
  t.e_write_fj_per_col = base.e_write_fj_per_col * s * s;
  t.e_ctrl_pj = base.e_ctrl_pj * s * s;
  t.leakage_mw = base.leakage_mw * s;
  return t;
}

double subarray_area_mm2(const tech_params& t, unsigned rows, unsigned cols) {
  const double cells_um2 = static_cast<double>(rows) * cols * t.cell_area_um2;
  return cells_um2 / t.array_efficiency * (1.0 + t.compute_overhead) * 1e-6;
}

double energy_compute_op_pj(const tech_params& t, unsigned cols, unsigned rows_activated,
                            bool writes_back) {
  double e = t.e_ctrl_pj + t.e_wordline_pj * rows_activated;
  e += cols * (t.e_bitline_fj_per_col + t.e_sense_fj_per_col) * 1e-3;
  if (writes_back) e += cols * t.e_write_fj_per_col * 1e-3;
  return e;
}

double energy_shift_op_pj(const tech_params& t, unsigned cols) {
  // Shift = read + latch rotate + write back; the latch rotate itself is
  // cheap relative to the bitline swings.
  return energy_compute_op_pj(t, cols, 1, true);
}

double energy_check_op_pj(const tech_params& t, unsigned cols) {
  // Check reads one row and latches one bit per tile; no write back.
  return energy_compute_op_pj(t, cols, 1, false);
}

std::uint64_t row_move_cycles(const tech_params& t, unsigned rows) {
  if (rows == 0) return 0;
  const double c = t.move_cycles_per_row * rows;
  const auto cycles = static_cast<std::uint64_t>(std::llround(c));
  return cycles < 1 ? 1 : cycles;
}

double energy_row_move_pj(const tech_params& t, unsigned cols, unsigned rows) {
  // Per moved row: one read of the source (no write back) plus one
  // write-back into the destination — the same micro-op energies the
  // compute model charges, so node projection needs no extra scaling rule.
  return rows * (energy_compute_op_pj(t, cols, 1, false) +
                 energy_compute_op_pj(t, cols, 1, true));
}

}  // namespace bpntt::sram
