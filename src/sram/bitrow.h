// A single SRAM row as a dynamic-width bit vector.
//
// The subarray model stores every wordline as a bitrow and implements the
// bitline operations (multi-row AND/NOR and the derived XOR/OR) on top of
// these word-parallel primitives.  Widths are small (<= a few thousand
// columns) so the simple limb loop is plenty fast for cycle-level runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bpntt::sram {

class bitrow {
 public:
  bitrow() = default;
  explicit bitrow(unsigned width);

  [[nodiscard]] unsigned width() const noexcept { return width_; }
  [[nodiscard]] bool get(unsigned i) const noexcept;
  void set(unsigned i, bool v) noexcept;
  void clear() noexcept;
  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] unsigned popcount() const noexcept;

  // Element-wise logic (operands must share a width).
  [[nodiscard]] static bitrow bit_and(const bitrow& a, const bitrow& b);
  [[nodiscard]] static bitrow bit_or(const bitrow& a, const bitrow& b);
  [[nodiscard]] static bitrow bit_xor(const bitrow& a, const bitrow& b);
  [[nodiscard]] static bitrow bit_nor(const bitrow& a, const bitrow& b);
  [[nodiscard]] bitrow inverted() const;

  // Whole-row logical shifts by one column.  "left" moves bits toward
  // higher column indices (toward the MSB end of every tile).
  [[nodiscard]] bitrow shifted_left() const;
  [[nodiscard]] bitrow shifted_right() const;

  // Word accessors used by tile packing (bit `base+i` for i in [0,count)).
  [[nodiscard]] std::uint64_t extract(unsigned base, unsigned count) const noexcept;
  void deposit(unsigned base, unsigned count, std::uint64_t value) noexcept;

  [[nodiscard]] std::string to_string() const;  // MSB-first, e.g. "0110"

  bool operator==(const bitrow& o) const noexcept = default;

 private:
  void trim() noexcept;

  unsigned width_ = 0;
  std::vector<std::uint64_t> limbs_;
};

}  // namespace bpntt::sram
