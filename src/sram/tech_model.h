// Analytical technology model (area / energy / timing) for the in-SRAM
// compute subarray.
//
// The paper obtains these numbers from PyMTL3 + OpenRAM + Synopsys DC +
// Cadence Innovus at 45 nm.  We cannot run a physical flow, so we use a
// first-order per-operation energy model and a cell-count area model whose
// constants are calibrated once so the headline configuration (256x256
// array, 256-point 16-bit NTT) reproduces the paper's Table I anchor row
// (3.8 GHz, 0.063 mm^2, ~69 nJ per batch).  Every other configuration is
// then *derived* from the same constants, which preserves the scaling
// behaviour the paper's claims rest on (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <string>

namespace bpntt::sram {

struct tech_params {
  std::string name = "45nm";
  double feature_nm = 45.0;

  // Area model.
  double cell_area_um2 = 0.33;     // 6T push-rule cell at 45 nm
  double array_efficiency = 0.36;  // cell area / (cells + decoders + SAs + drivers)
  double compute_overhead = 0.015; // extra SA logic for in-SRAM compute (<2%, §IV-A)

  // Timing: one micro-op per array cycle.
  double freq_ghz = 3.8;           // Table I "Max f" for the 256x256 array
  // On-chip row move (bank-to-bank over the shared data bus): read the
  // source row, drive the bus, write the destination row — two array
  // micro-ops' worth of cycles per row.  A cycle count, not a physical
  // delay, so node projection leaves it alone (like every other cycle
  // quantity in the model).
  double move_cycles_per_row = 2.0;

  // Energy model, per micro-op.
  double e_wordline_pj = 0.010;        // per activated wordline
  double e_bitline_fj_per_col = 0.35;  // bitline swing, per column
  double e_sense_fj_per_col = 0.18;    // sense amplifier, per column
  double e_write_fj_per_col = 0.30;    // write-back driver, per column
  double e_ctrl_pj = 0.020;            // decode/control per issued op
  double leakage_mw = 0.05;
};

// Calibrated 45 nm parameters (the node used throughout the paper).
[[nodiscard]] tech_params tech_45nm();

// Projection to another node using constant-field scaling: delay and energy
// scale ~linearly and ~quadratically with feature size respectively, area
// quadratically.  Matches the paper's "projected to 45nm" treatment of the
// related-work rows in Table I.
[[nodiscard]] tech_params project_to_node(const tech_params& base, double target_nm);

// Subarray area in mm^2 for a rows x cols array including peripherals and
// the in-SRAM compute overhead.
[[nodiscard]] double subarray_area_mm2(const tech_params& t, unsigned rows, unsigned cols);

// Per-op energies in pJ.
[[nodiscard]] double energy_compute_op_pj(const tech_params& t, unsigned cols,
                                          unsigned rows_activated, bool writes_back);
[[nodiscard]] double energy_shift_op_pj(const tech_params& t, unsigned cols);
[[nodiscard]] double energy_check_op_pj(const tech_params& t, unsigned cols);

// On-chip row move between banks: the cost of serving a warm operand
// resident on a *different* bank than the one executing — strictly between
// a same-bank hit (zero) and a cold re-transform.  Cycles are
// move_cycles_per_row per row (minimum 1 for a non-empty move); energy is
// one read plus one write-back per row, derived from the same per-op
// constants as every other energy figure (so project_to_node scales it for
// free).
[[nodiscard]] std::uint64_t row_move_cycles(const tech_params& t, unsigned rows);
[[nodiscard]] double energy_row_move_pj(const tech_params& t, unsigned cols, unsigned rows);

}  // namespace bpntt::sram
