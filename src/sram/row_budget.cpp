#include "sram/row_budget.h"

#include <stdexcept>
#include <string>

namespace bpntt::sram {

row_budget::row_budget(unsigned banks, unsigned subarrays_per_bank, unsigned rows_per_subarray)
    : banks_(banks), subarrays_(subarrays_per_bank), rows_per_subarray_(rows_per_subarray) {
  if (banks_ == 0 || subarrays_ == 0) {
    throw std::invalid_argument("row_budget: needs at least one bank and one subarray");
  }
  bank_reserved_.assign(banks_, 0);
  state_.assign(static_cast<std::size_t>(banks_) * subarrays_, {});
}

std::optional<row_span> row_budget::reserve(unsigned bank, unsigned rows) {
  if (bank >= banks_) {
    throw std::invalid_argument("row_budget: reserve names bank " + std::to_string(bank) +
                                " of " + std::to_string(banks_));
  }
  if (rows == 0 || rows > rows_per_subarray_) return std::nullopt;
  for (unsigned sub = 0; sub < subarrays_; ++sub) {
    subarray_state& ss = at(bank, sub);
    // Exact-size reuse first: the working set is uniform (n rows per
    // operand), so a freed span is the natural home of the next arrival
    // and the bump frontier only grows while the subarray genuinely fills.
    for (std::size_t f = 0; f < ss.free_spans.size(); ++f) {
      if (ss.free_spans[f].rows != rows) continue;
      row_span s = ss.free_spans[f];
      ss.free_spans.erase(ss.free_spans.begin() + static_cast<long>(f));
      reserved_ += rows;
      bank_reserved_[bank] += rows;
      return s;
    }
    if (ss.bump + rows <= rows_per_subarray_) {
      const row_span s{bank, sub, ss.bump, rows};
      ss.bump += rows;
      reserved_ += rows;
      bank_reserved_[bank] += rows;
      return s;
    }
  }
  return std::nullopt;
}

void row_budget::release(const row_span& s) {
  if (s.bank >= banks_ || s.subarray >= subarrays_ || s.rows == 0) {
    throw std::invalid_argument("row_budget: release of a malformed span");
  }
  subarray_state& ss = at(s.bank, s.subarray);
  ss.free_spans.push_back(s);
  reserved_ -= s.rows;
  bank_reserved_[s.bank] -= s.rows;
}

std::uint64_t row_budget::bank_reserved_rows(unsigned bank) const {
  if (bank >= banks_) {
    throw std::invalid_argument("row_budget: occupancy probe names bank " +
                                std::to_string(bank) + " of " + std::to_string(banks_));
  }
  return bank_reserved_[bank];
}

}  // namespace bpntt::sram
