// Per-subarray row-budget accounting for device-resident operands.
//
// BP-NTT's operands live *in* the data subarrays: an operand that stays
// resident between dispatches occupies n physical rows of some subarray
// until it is released.  This module is the capacity ledger the runtime's
// residency manager charges against — reserve() hands out a concrete
// (bank, subarray, row range) placement or refuses because the budget is
// exhausted, release() returns the rows.  Row arithmetic only; which
// operand lives where (and who gets evicted) is the residency manager's
// policy, not this ledger's.
//
// Placement within a bank is first-fit over its subarrays: a released
// span's exact row range is reused before the bump pointer grows, so the
// steady state of a same-sized working set (every NTT operand is n rows)
// never fragments.
//
// NOT internally synchronized — the owning residency manager serializes
// every call under its own mutex (the same contract bank models have with
// the scheduler's claims).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace bpntt::sram {

// One resident allocation: `rows` physical rows of one subarray, starting
// at first_row.  Value type — the residency manager stores it per entry
// and hands it back verbatim on release.
struct row_span {
  unsigned bank = 0;
  unsigned subarray = 0;
  unsigned first_row = 0;
  unsigned rows = 0;

  [[nodiscard]] bool operator==(const row_span&) const = default;
};

class row_budget {
 public:
  // banks x subarrays_per_bank regions of rows_per_subarray reservable
  // rows each.  rows_per_subarray may be 0 (every reserve refuses) — the
  // disabled-residency configuration.
  row_budget(unsigned banks, unsigned subarrays_per_bank, unsigned rows_per_subarray);

  // Reserve `rows` contiguous rows on the named bank; first-fit over its
  // subarrays (freed exact-size spans first, then the bump frontier).
  // std::nullopt when no subarray of the bank can host the span.
  [[nodiscard]] std::optional<row_span> reserve(unsigned bank, unsigned rows);

  // Return a span handed out by reserve().  Releasing foreign spans is a
  // logic error upstream; the ledger only checks shape.
  void release(const row_span& s);

  [[nodiscard]] unsigned banks() const noexcept { return banks_; }
  [[nodiscard]] unsigned subarrays_per_bank() const noexcept { return subarrays_; }
  [[nodiscard]] unsigned rows_per_subarray() const noexcept { return rows_per_subarray_; }

  // Occupancy probes: rows currently reserved (whole device / one bank)
  // and the total reservable capacity.
  [[nodiscard]] std::uint64_t reserved_rows() const noexcept { return reserved_; }
  [[nodiscard]] std::uint64_t bank_reserved_rows(unsigned bank) const;
  [[nodiscard]] std::uint64_t capacity_rows() const noexcept {
    return static_cast<std::uint64_t>(banks_) * subarrays_ * rows_per_subarray_;
  }

 private:
  struct subarray_state {
    unsigned bump = 0;                  // rows handed out past every freed span
    std::vector<row_span> free_spans;   // released, reusable at exact size
  };

  [[nodiscard]] subarray_state& at(unsigned bank, unsigned subarray) {
    return state_[static_cast<std::size_t>(bank) * subarrays_ + subarray];
  }

  unsigned banks_;
  unsigned subarrays_;
  unsigned rows_per_subarray_;
  std::uint64_t reserved_ = 0;
  std::vector<std::uint64_t> bank_reserved_;
  std::vector<subarray_state> state_;
};

}  // namespace bpntt::sram
