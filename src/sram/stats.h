// Execution statistics accumulated by the subarray simulator.
#pragma once

#include <cstdint>

namespace bpntt::sram {

struct op_stats {
  std::uint64_t cycles = 0;

  std::uint64_t binary_ops = 0;  // single-result dual-row activations
  std::uint64_t pair_ops = 0;    // fused {AND, XOR} dual-write activations
  std::uint64_t copy_ops = 0;    // unary read->write (with optional invert/mask)
  std::uint64_t shift_ops = 0;
  std::uint64_t check_ops = 0;   // predicate latch / zero test
  std::uint64_t host_writes = 0;
  std::uint64_t host_reads = 0;

  double energy_pj = 0.0;

  // 1-bits dropped by shifts that the microcode declared lossless — each is
  // a violation of the paper's Observation 1/2 and indicates a bug or an
  // out-of-envelope modulus.
  std::uint64_t lossless_shift_violations = 0;

  [[nodiscard]] std::uint64_t total_array_ops() const noexcept {
    return binary_ops + pair_ops + copy_ops + shift_ops + check_ops;
  }

  op_stats& operator+=(const op_stats& o) noexcept {
    cycles += o.cycles;
    binary_ops += o.binary_ops;
    pair_ops += o.pair_ops;
    copy_ops += o.copy_ops;
    shift_ops += o.shift_ops;
    check_ops += o.check_ops;
    host_writes += o.host_writes;
    host_reads += o.host_reads;
    energy_pj += o.energy_pj;
    lossless_shift_violations += o.lossless_shift_violations;
    return *this;
  }
};

}  // namespace bpntt::sram
