#include "sram/subarray.h"

#include <stdexcept>

namespace bpntt::sram {

subarray::subarray(unsigned rows, tile_geometry geom, tech_params tech)
    : geom_(geom), tech_(std::move(tech)), pred_mask_(geom.cols) {
  geom_.validate();
  if (rows == 0 || rows > 4096) throw std::invalid_argument("subarray: rows out of range");
  data_.assign(rows, bitrow(geom_.cols));
}

void subarray::set_tile_bits(unsigned tile_bits) {
  tile_geometry g = geom_;
  g.tile_bits = tile_bits;
  g.validate();
  geom_ = g;
}

void subarray::bounds(unsigned row) const {
  if (row >= data_.size()) throw std::out_of_range("subarray: row index");
}

void subarray::host_write_row(unsigned row, const bitrow& value) {
  bounds(row);
  if (value.width() != geom_.cols) throw std::invalid_argument("subarray: row width mismatch");
  data_[row] = value;
  ++stats_.host_writes;
  ++stats_.cycles;
  stats_.energy_pj += energy_compute_op_pj(tech_, geom_.cols, 1, true);
}

const bitrow& subarray::host_read_row(unsigned row) {
  bounds(row);
  ++stats_.host_reads;
  ++stats_.cycles;
  stats_.energy_pj += energy_compute_op_pj(tech_, geom_.cols, 1, false);
  return data_[row];
}

void subarray::host_write_word(unsigned tile, unsigned row, std::uint64_t value) {
  bounds(row);
  data_[row].deposit(geom_.tile_base(tile), geom_.tile_bits, value);
  ++stats_.host_writes;
  ++stats_.cycles;
  stats_.energy_pj += energy_compute_op_pj(tech_, geom_.tile_bits, 1, true);
}

std::uint64_t subarray::host_read_word(unsigned tile, unsigned row) {
  bounds(row);
  ++stats_.host_reads;
  ++stats_.cycles;
  stats_.energy_pj += energy_compute_op_pj(tech_, geom_.tile_bits, 1, false);
  return data_[row].extract(geom_.tile_base(tile), geom_.tile_bits);
}

const bitrow& subarray::peek(unsigned row) const {
  bounds(row);
  return data_[row];
}

std::uint64_t subarray::peek_word(unsigned tile, unsigned row) const {
  bounds(row);
  return data_[row].extract(geom_.tile_base(tile), geom_.tile_bits);
}

void subarray::store(unsigned dst, const bitrow& value, write_mask mask) {
  bounds(dst);
  bitrow v = value;
  for (const auto& [col, stuck] : stuck_columns_) v.set(col, stuck);
  switch (mask) {
    case write_mask::none:
      data_[dst] = v;
      break;
    case write_mask::pred:
      data_[dst] = bitrow::bit_or(bitrow::bit_and(v, pred_mask_),
                                  bitrow::bit_and(data_[dst], pred_mask_.inverted()));
      break;
    case write_mask::pred_inv:
      data_[dst] = bitrow::bit_or(bitrow::bit_and(v, pred_mask_.inverted()),
                                  bitrow::bit_and(data_[dst], pred_mask_));
      break;
  }
}

void subarray::inject_stuck_column(unsigned col, bool value) {
  if (col >= geom_.cols) throw std::out_of_range("subarray: fault column");
  stuck_columns_.emplace_back(col, value);
}

void subarray::clear_faults() noexcept { stuck_columns_.clear(); }

void subarray::add_energy_compute(unsigned rows_activated, bool writes_back,
                                  unsigned result_rows) {
  double e = energy_compute_op_pj(tech_, geom_.cols, rows_activated, writes_back);
  if (writes_back && result_rows > 1) {
    // The fused pair op drives a second result row.
    e += geom_.cols * tech_.e_write_fj_per_col * 1e-3;
  }
  stats_.energy_pj += e;
}

void subarray::op_binary(unsigned dst, unsigned src0, unsigned src1, logic_fn fn,
                         write_mask mask) {
  bounds(src0);
  bounds(src1);
  bitrow r(geom_.cols);
  switch (fn) {
    case logic_fn::op_and: r = bitrow::bit_and(data_[src0], data_[src1]); break;
    case logic_fn::op_or: r = bitrow::bit_or(data_[src0], data_[src1]); break;
    case logic_fn::op_xor: r = bitrow::bit_xor(data_[src0], data_[src1]); break;
    case logic_fn::op_nor: r = bitrow::bit_nor(data_[src0], data_[src1]); break;
  }
  store(dst, r, mask);
  ++stats_.binary_ops;
  ++stats_.cycles;
  add_energy_compute(2, true);
}

void subarray::op_pair(unsigned c_dst, unsigned s_dst, unsigned src0, unsigned src1,
                       write_mask mask) {
  bounds(src0);
  bounds(src1);
  if (c_dst == s_dst) throw std::invalid_argument("subarray: pair destinations collide");
  // Both SA outputs of one dual-row activation; snapshot sources first so a
  // destination aliasing a source behaves like latched hardware.
  const bitrow a = data_[src0];
  const bitrow b = data_[src1];
  store(c_dst, bitrow::bit_and(a, b), mask);
  store(s_dst, bitrow::bit_xor(a, b), mask);
  ++stats_.pair_ops;
  ++stats_.cycles;
  add_energy_compute(2, true, 2);
}

void subarray::op_copy(unsigned dst, unsigned src, bool invert, write_mask mask) {
  bounds(src);
  store(dst, invert ? data_[src].inverted() : data_[src], mask);
  ++stats_.copy_ops;
  ++stats_.cycles;
  add_energy_compute(1, true);
}

void subarray::op_shift(unsigned dst, unsigned src, shift_dir dir, bool segmented,
                        bool expect_lossless) {
  bounds(src);
  const bitrow& in = data_[src];
  bitrow out = dir == shift_dir::left ? in.shifted_left() : in.shifted_right();
  if (segmented) {
    // Zero the bit that crossed each tile boundary and count losses.
    for (unsigned t = 0; t < geom_.num_tiles(); ++t) {
      const unsigned lsb_col = geom_.tile_base(t);
      const unsigned msb_col = lsb_col + geom_.tile_bits - 1;
      if (dir == shift_dir::left) {
        if (expect_lossless && in.get(msb_col)) ++stats_.lossless_shift_violations;
        out.set(lsb_col, false);
      } else {
        if (expect_lossless && in.get(lsb_col)) ++stats_.lossless_shift_violations;
        out.set(msb_col, false);
      }
    }
    // Columns outside any tile keep shifting harmlessly; clear them so
    // stale bits cannot drift back in.
    for (unsigned c = geom_.used_cols(); c < geom_.cols; ++c) out.set(c, false);
  } else if (expect_lossless) {
    const unsigned edge = dir == shift_dir::left ? geom_.cols - 1 : 0;
    if (in.get(edge)) ++stats_.lossless_shift_violations;
  }
  store(dst, out, write_mask::none);
  ++stats_.shift_ops;
  ++stats_.cycles;
  stats_.energy_pj += energy_shift_op_pj(tech_, geom_.cols);
}

void subarray::op_check_pred(unsigned src, unsigned bit_index) {
  bounds(src);
  if (bit_index >= geom_.tile_bits) throw std::out_of_range("subarray: predicate bit index");
  // Broadcast bit `bit_index` of every tile across that tile's columns.
  for (unsigned t = 0; t < geom_.num_tiles(); ++t) {
    const bool p = data_[src].get(geom_.column_of(t, bit_index));
    const unsigned base = geom_.tile_base(t);
    for (unsigned b = 0; b < geom_.tile_bits; ++b) pred_mask_.set(base + b, p);
  }
  ++stats_.check_ops;
  ++stats_.cycles;
  stats_.energy_pj += energy_check_op_pj(tech_, geom_.cols);
}

bool subarray::op_check_zero(unsigned src) {
  bounds(src);
  zero_flag_ = !data_[src].any();
  ++stats_.check_ops;
  ++stats_.cycles;
  stats_.energy_pj += energy_check_op_pj(tech_, geom_.cols);
  return zero_flag_;
}

}  // namespace bpntt::sram
