// Tile geometry: the paper's bit-parallel data layout splits the 256-column
// array into `num_tiles` tiles of `tile_bits` columns; each tile holds one
// polynomial, one coefficient per row, LSB at the tile's lowest column
// (Fig. 5a).  Reconfiguring the tile width is how BP-NTT trades coefficient
// bitwidth against SIMD parallelism (⌊256/n⌋-bit coefficients for n tiles).
#pragma once

#include <stdexcept>

namespace bpntt::sram {

struct tile_geometry {
  unsigned cols = 256;
  unsigned tile_bits = 16;

  [[nodiscard]] unsigned num_tiles() const noexcept { return cols / tile_bits; }
  [[nodiscard]] unsigned used_cols() const noexcept { return num_tiles() * tile_bits; }
  [[nodiscard]] unsigned tile_base(unsigned tile) const {
    if (tile >= num_tiles()) throw std::out_of_range("tile_geometry: tile index");
    return tile * tile_bits;
  }
  // Column holding bit `bit` of tile `tile` (LSB-first within the tile).
  [[nodiscard]] unsigned column_of(unsigned tile, unsigned bit) const {
    if (bit >= tile_bits) throw std::out_of_range("tile_geometry: bit index");
    return tile_base(tile) + bit;
  }

  void validate() const {
    if (tile_bits == 0 || tile_bits > cols) {
      throw std::invalid_argument("tile_geometry: tile_bits out of range");
    }
    if (num_tiles() == 0) throw std::invalid_argument("tile_geometry: no tiles fit");
  }
};

}  // namespace bpntt::sram
