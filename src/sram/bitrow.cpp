#include "sram/bitrow.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace bpntt::sram {

bitrow::bitrow(unsigned width) : width_(width), limbs_((width + 63) / 64, 0) {
  if (width == 0) throw std::invalid_argument("bitrow: zero width");
}

bool bitrow::get(unsigned i) const noexcept {
  assert(i < width_);
  return (limbs_[i / 64] >> (i % 64)) & 1ULL;
}

void bitrow::set(unsigned i, bool v) noexcept {
  assert(i < width_);
  const std::uint64_t mask = 1ULL << (i % 64);
  if (v) {
    limbs_[i / 64] |= mask;
  } else {
    limbs_[i / 64] &= ~mask;
  }
}

void bitrow::clear() noexcept {
  for (auto& l : limbs_) l = 0;
}

bool bitrow::any() const noexcept {
  for (auto l : limbs_) {
    if (l != 0) return true;
  }
  return false;
}

unsigned bitrow::popcount() const noexcept {
  unsigned n = 0;
  for (auto l : limbs_) n += static_cast<unsigned>(std::popcount(l));
  return n;
}

void bitrow::trim() noexcept {
  const unsigned top = width_ % 64;
  if (top != 0) limbs_.back() &= (1ULL << top) - 1;
}

bitrow bitrow::bit_and(const bitrow& a, const bitrow& b) {
  if (a.width_ != b.width_) throw std::invalid_argument("bitrow: width mismatch");
  bitrow r(a.width_);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) r.limbs_[i] = a.limbs_[i] & b.limbs_[i];
  return r;
}

bitrow bitrow::bit_or(const bitrow& a, const bitrow& b) {
  if (a.width_ != b.width_) throw std::invalid_argument("bitrow: width mismatch");
  bitrow r(a.width_);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) r.limbs_[i] = a.limbs_[i] | b.limbs_[i];
  return r;
}

bitrow bitrow::bit_xor(const bitrow& a, const bitrow& b) {
  if (a.width_ != b.width_) throw std::invalid_argument("bitrow: width mismatch");
  bitrow r(a.width_);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) r.limbs_[i] = a.limbs_[i] ^ b.limbs_[i];
  return r;
}

bitrow bitrow::bit_nor(const bitrow& a, const bitrow& b) {
  bitrow r = bit_or(a, b);
  return r.inverted();
}

bitrow bitrow::inverted() const {
  bitrow r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = ~limbs_[i];
  r.trim();
  return r;
}

bitrow bitrow::shifted_left() const {
  bitrow r(width_);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i] = (limbs_[i] << 1) | carry;
    carry = limbs_[i] >> 63;
  }
  r.trim();
  return r;
}

bitrow bitrow::shifted_right() const {
  bitrow r(width_);
  std::uint64_t carry = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    r.limbs_[i] = (limbs_[i] >> 1) | (carry << 63);
    carry = limbs_[i] & 1ULL;
  }
  return r;
}

std::uint64_t bitrow::extract(unsigned base, unsigned count) const noexcept {
  assert(count <= 64 && base + count <= width_);
  std::uint64_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    if (get(base + i)) v |= 1ULL << i;
  }
  return v;
}

void bitrow::deposit(unsigned base, unsigned count, std::uint64_t value) noexcept {
  assert(count <= 64 && base + count <= width_);
  for (unsigned i = 0; i < count; ++i) set(base + i, (value >> i) & 1ULL);
}

std::string bitrow::to_string() const {
  std::string s;
  s.reserve(width_);
  for (unsigned i = width_; i-- > 0;) s += get(i) ? '1' : '0';
  return s;
}

}  // namespace bpntt::sram
