// Cycle-level model of one compute-enabled 6T SRAM subarray.
//
// Operations model what the modified sense amplifiers of Fig. 5(b) can do in
// a single array cycle:
//
// * `op_binary`    — activate two wordlines; the SA senses AND (bitline) and
//                    NOR (complement bitline) simultaneously and derives
//                    XOR/OR; one result row is written back.
// * `op_pair`      — same activation, but both half-adder outputs
//                    {AND -> c_dst, XOR -> s_dst} are written (dual write
//                    drivers; see DESIGN.md §3 "Fused AND/XOR").
// * `op_copy`      — single-row activation, optional output inversion.
// * `op_shift`     — read a row, rotate the SA latch one column left/right,
//                    write back.  In tile-segmented mode bits never cross
//                    tile boundaries (zero fill), modelling the configurable
//                    shifter segmentation that the reconfigurable tile width
//                    requires.
// * `op_check_*`   — the Fig. 4(d) `Check` instruction: latch a per-tile
//                    predicate bit (broadcast across the tile as a
//                    per-column write mask) or perform a wired-OR zero test
//                    whose flag the controller can branch on.
//
// Predicated writes (masked / masked-inverted) implement the data-dependent
// `m = M or 0` selection of Algorithm 2 line 11 and the conditional
// corrections of modular add/sub.
//
// The model also enforces the paper's two structural observations: shifts
// flagged `expect_lossless` count any dropped 1-bit as a violation
// (Observation 1 for `Carry << 1`, Observation 2 for `s1 >> 1`).
#pragma once

#include <cstdint>
#include <vector>

#include "sram/bitrow.h"
#include "sram/stats.h"
#include "sram/tech_model.h"
#include "sram/tile.h"

namespace bpntt::sram {

enum class logic_fn : std::uint8_t { op_and, op_or, op_xor, op_nor };
enum class shift_dir : std::uint8_t { left, right };  // left = toward tile MSB

// Write-predication mode for ops that store a result row.
enum class write_mask : std::uint8_t {
  none,      // write all columns
  pred,      // write only columns whose predicate latch is 1
  pred_inv,  // write only columns whose predicate latch is 0
};

class subarray {
 public:
  subarray(unsigned rows, tile_geometry geom, tech_params tech);

  [[nodiscard]] unsigned rows() const noexcept { return static_cast<unsigned>(data_.size()); }
  [[nodiscard]] unsigned cols() const noexcept { return geom_.cols; }
  [[nodiscard]] const tile_geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] const tech_params& tech() const noexcept { return tech_; }
  [[nodiscard]] const op_stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  // Reconfigure the tile width (the paper's bitwidth flexibility).  Data is
  // left in place; callers reload their layout afterwards.
  void set_tile_bits(unsigned tile_bits);

  // --- Host (non-compute) access: ordinary cache reads/writes. ---
  void host_write_row(unsigned row, const bitrow& value);
  [[nodiscard]] const bitrow& host_read_row(unsigned row);
  void host_write_word(unsigned tile, unsigned row, std::uint64_t value);
  [[nodiscard]] std::uint64_t host_read_word(unsigned tile, unsigned row);
  // Debug peek that does not touch statistics (used by tests/traces).
  [[nodiscard]] const bitrow& peek(unsigned row) const;
  [[nodiscard]] std::uint64_t peek_word(unsigned tile, unsigned row) const;

  // --- Compute micro-ops (1 array cycle each). ---
  void op_binary(unsigned dst, unsigned src0, unsigned src1, logic_fn fn,
                 write_mask mask = write_mask::none);
  void op_pair(unsigned c_dst, unsigned s_dst, unsigned src0, unsigned src1,
               write_mask mask = write_mask::none);
  void op_copy(unsigned dst, unsigned src, bool invert = false,
               write_mask mask = write_mask::none);
  void op_shift(unsigned dst, unsigned src, shift_dir dir, bool segmented = true,
                bool expect_lossless = false);
  void op_check_pred(unsigned src, unsigned bit_index);
  bool op_check_zero(unsigned src);

  [[nodiscard]] bool zero_flag() const noexcept { return zero_flag_; }
  [[nodiscard]] const bitrow& predicate_mask() const noexcept { return pred_mask_; }

  // --- Fault injection (test harness): a stuck-at fault on one sense
  // amplifier forces that column of every *written* result to `value`.
  // Models a manufacturing defect; used to prove end-to-end verification
  // detects silent data corruption.
  void inject_stuck_column(unsigned col, bool value);
  void clear_faults() noexcept;

 private:
  void store(unsigned dst, const bitrow& value, write_mask mask);
  void bounds(unsigned row) const;
  void add_energy_compute(unsigned rows_activated, bool writes_back, unsigned result_rows = 1);

  tile_geometry geom_;
  tech_params tech_;
  std::vector<bitrow> data_;
  bitrow pred_mask_;
  bool zero_flag_ = false;
  op_stats stats_;
  std::vector<std::pair<unsigned, bool>> stuck_columns_;
};

}  // namespace bpntt::sram
