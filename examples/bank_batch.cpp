// Bank-level batch service (Fig. 4b) through the runtime API: a PQC server
// signs/encapsulates for many clients at once, so NTT jobs arrive in
// batches far wider than one subarray's SIMD width.  The runtime shards the
// batch across two cache banks (4 subarrays each, one repurposed as
// CTRL/CMD per bank) in waves, demonstrating the hierarchy level of the
// paper's Fig. 4 and the CTRL/CMD sharing claim.
#include <cstdio>
#include <optional>
#include <utility>
#include <vector>

#include "common/xoshiro.h"
#include "runtime/context.h"

int main() {
  using namespace bpntt;

  const auto opts = runtime::runtime_options()
                        .with_ring(256, 12289, 16)
                        .with_backend(runtime::backend_kind::sram)
                        .with_banks(2)
                        .with_subarrays(4)   // 2 banks x (3 compute + 1 CTRL/CMD)
                        .with_threads(4);    // executor pool: one task per bank slice
  runtime::context ctx(opts);

  std::printf("=== Bank-level batch NTT service ===\n\n");
  std::printf("runtime: %u banks of %u subarrays; wave width %u NTTs; %u pool threads\n",
              opts.topo.total_banks(), opts.topo.subarrays, ctx.wave_width(),
              ctx.executor_threads());

  // 100 client polynomials (e.g. one per handshake).
  common::xoshiro256ss rng(777);
  std::vector<runtime::job_id> ids;
  std::vector<std::vector<core::u64>> jobs(100);
  for (auto& j : jobs) {
    j.resize(opts.params.n);
    for (auto& c : j) c = rng.below(opts.params.q);
    ids.push_back(ctx.submit(runtime::ntt_job{.coeffs = j}));
  }

  // flush() is asynchronous: one sharded batch is handed to the executor
  // (banks run as parallel pool tasks) and the server thread is free to
  // keep accepting clients.  try_wait() probes without blocking.
  ctx.flush();
  std::printf("flushed: %llu jobs in flight while the caller keeps working\n",
              static_cast<unsigned long long>(ctx.stats().jobs_in_flight));
  unsigned polls = 0;
  std::optional<runtime::job_result> first;
  while (!(first = ctx.try_wait(ids.front()))) ++polls;  // overlap point
  std::printf("first result after %u polls (status %s)\n", polls,
              first->status == runtime::job_status::ok ? "ok" : "failed");

  // wait_all() drains the rest in submission order.
  auto results = ctx.wait_all();
  results.insert(results.begin(), std::move(*first));
  const auto s = ctx.stats();

  // Verify the whole batch against the reference backend, same API.
  runtime::context golden(
      runtime::runtime_options(opts).with_backend(runtime::backend_kind::reference));
  for (const auto& j : jobs) (void)golden.submit(runtime::ntt_job{.coeffs = j});
  const auto expected = golden.wait_all();
  unsigned ok = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ok += (results[i].outputs[0] == expected[i].outputs[0]) ? 1 : 0;
  }

  const double freq_ghz = opts.array.tech.freq_ghz;
  const double latency_us = static_cast<double>(s.wall_cycles) / (freq_ghz * 1e3);
  std::printf("batch of %zu NTTs: %llu waves, %llu cycles (%.1f us), %.1f nJ\n", jobs.size(),
              static_cast<unsigned long long>(s.waves),
              static_cast<unsigned long long>(s.wall_cycles), latency_us, s.energy_nj);
  std::printf("throughput: %.1f KNTT/s across the banks | energy %.2f nJ per NTT\n",
              jobs.size() / latency_us * 1e3, s.energy_nj / jobs.size());
  std::printf("verification: %u/%zu outputs match the reference backend\n", ok, jobs.size());
  return ok == jobs.size() ? 0 : 1;
}
