// Bank-level batch service (Fig. 4b): a PQC server signs/encapsulates for
// many clients at once, so NTT jobs arrive in batches far wider than one
// subarray's SIMD width.  A cache bank (4 subarrays, one repurposed as
// CTRL/CMD) schedules the batch in waves across its three compute
// subarrays, demonstrating the hierarchy level of the paper's Fig. 4 and
// the CTRL/CMD sharing claim.
#include <cstdio>
#include <vector>

#include "bpntt/bank.h"
#include "common/xoshiro.h"
#include "nttmath/ntt.h"

int main() {
  using namespace bpntt;

  core::bank_config cfg;  // 4 subarrays x 256x256 @ 45 nm
  core::ntt_params params;
  params.n = 256;
  params.q = 12289;
  params.k = 16;
  core::bp_ntt_bank bank(cfg, params);

  std::printf("=== Bank-level batch NTT service ===\n\n");
  std::printf("bank: %u compute subarrays + 1 CTRL/CMD subarray\n", bank.compute_subarrays());
  std::printf("wave width: %u NTTs; CTRL/CMD stores twiddles in %u rows of 256\n",
              bank.lanes_per_wave(), bank.ctrl_rows_used());
  std::printf("bank area: %.3f mm^2\n\n", bank.area_mm2());

  // 100 client polynomials (e.g. one per handshake).
  common::xoshiro256ss rng(777);
  std::vector<std::vector<core::u64>> jobs(100);
  for (auto& j : jobs) {
    j.resize(params.n);
    for (auto& c : j) c = rng.below(params.q);
  }

  const auto r = bank.run_forward_batch(jobs);

  // Verify the whole batch against the golden transform.
  const math::ntt_tables tables(params.n, params.q, true);
  unsigned ok = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto expect = jobs[i];
    math::ntt_forward(expect, tables);
    ok += (r.outputs[i] == expect) ? 1 : 0;
  }

  const double freq_ghz = cfg.array.tech.freq_ghz;
  const double latency_us = r.cycles / (freq_ghz * 1e3);
  std::printf("batch of %zu NTTs: %llu waves, %llu cycles (%.1f us), %.1f nJ\n", jobs.size(),
              static_cast<unsigned long long>(r.waves),
              static_cast<unsigned long long>(r.cycles), latency_us, r.energy_nj);
  std::printf("throughput: %.1f KNTT/s per bank | energy %.2f nJ per NTT\n",
              jobs.size() / latency_us * 1e3, r.energy_nj / jobs.size());
  std::printf("verification: %u/%zu outputs match the golden NTT\n", ok, jobs.size());
  return ok == jobs.size() ? 0 : 1;
}
