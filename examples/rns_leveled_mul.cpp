// Leveled multiplication with RNS modulus switching: the walkthrough.
//
// A leveled HE pipeline multiplies, then *rescales*: every product is
// divided (with exact rounding) by the chain's last limb prime, dropping
// one limb — one level — per multiply.  This walk actually consumes the
// levels of an he_rns_level parameter set: a ciphertext-shaped polynomial
// enters at the full 4-limb modulus and is multiplied down the chain by a
// fixed evaluation key until one limb remains, each step verified against
// the wide_uint divide-and-round oracle.
//
// The fixed key is also where the NTT-domain operand cache earns its keep:
// its forward transform per limb is computed once and served from the
// cache on every later product at that level — watch operand_cache_hits.
#include <cstdio>
#include <vector>

#include "common/xoshiro.h"
#include "crypto/params.h"
#include "rns/rns_engine.h"
#include "runtime/context.h"

namespace {

using bpntt::math::wide_uint;

constexpr unsigned kOrder = 128;
constexpr unsigned kLimbBits = 14;
constexpr unsigned kLimbs = 4;

std::vector<wide_uint> random_canonical(const bpntt::rns::rns_basis& basis,
                                        bpntt::common::xoshiro256ss& rng) {
  std::vector<wide_uint> poly;
  poly.reserve(kOrder);
  for (unsigned i = 0; i < kOrder; ++i) {
    wide_uint c(basis.wide_bits());
    for (unsigned b = 0; b < basis.modulus_bits(); ++b) c.set_bit(b, rng() & 1ULL);
    poly.push_back(c.divmod(basis.modulus()).rem);
  }
  return poly;
}

// The oracle: lift-free check of one modswitch_polymul output against
// schoolbook product -> divround by the dropped prime -> reduce mod the
// smaller modulus.
bool matches_oracle(const std::vector<wide_uint>& a, const std::vector<wide_uint>& b,
                    const std::vector<wide_uint>& got, const bpntt::rns::rns_basis& from,
                    const bpntt::rns::rns_basis& to) {
  const auto product = bpntt::rns::schoolbook_negacyclic_wide(a, b, from.modulus());
  const wide_uint q_drop(64, from.prime(from.limbs() - 1));
  for (unsigned i = 0; i < kOrder; ++i) {
    const wide_uint expect =
        product[i].divround(q_drop).divmod(to.modulus().resized(from.wide_bits())).rem;
    if (!(got[i].resized(from.wide_bits()) == expect)) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace bpntt;

  const auto top = crypto::he_rns_level(kLimbBits, kLimbs, kOrder);
  const auto chain = crypto::rns_level_chain(top);
  std::printf("=== Leveled RNS multiply: %u limbs of %u bits, %zu levels ===\n\n", kLimbs,
              kLimbBits, chain.size() - 1);

  // One channel per top-level limb; lower levels reuse a subset of the
  // same dedicated limb streams.
  auto opts = runtime::runtime_options::for_rns_param_set(top)
                  .with_backend(runtime::backend_kind::sram)
                  .with_topology(kLimbs, 1, 4)
                  .with_threads(kLimbs);
  runtime::context ctx(opts);

  common::xoshiro256ss rng(99);
  // The walk's state: a ciphertext-shaped polynomial at the top level, and
  // the fixed "evaluation key" every level multiplies by.  The key's
  // coefficients stay below the floor modulus so the same value is
  // canonical at every level.
  rns::rns_basis basis(kOrder, top.primes);
  std::vector<wide_uint> ct = random_canonical(basis, rng);
  const rns::rns_basis floor_basis(kOrder, {top.primes.front()});
  std::vector<wide_uint> key_small = random_canonical(floor_basis, rng);

  bool all_ok = true;
  for (std::size_t level = 0; level + 1 < chain.size(); ++level) {
    rns::rns_engine eng(ctx, basis);
    const auto key = [&] {
      std::vector<wide_uint> k;
      k.reserve(kOrder);
      for (const auto& c : key_small) k.push_back(c.resized(basis.wide_bits()));
      return k;
    }();

    // Two products at this level against the same fixed key: the second
    // one's key transforms come straight from the operand cache.
    const auto hits_before = ctx.stats().operand_cache_hits;
    const auto first = eng.modswitch_polymul(ct, key);
    (void)eng.modswitch_polymul(ct, key);
    const auto hits_after = ctx.stats().operand_cache_hits;

    const auto& next_basis = eng.dropped_basis();
    const bool ok = matches_oracle(ct, key, first, basis, next_basis);
    all_ok = all_ok && ok;
    std::printf("level %zu: %3ub modulus -> %3ub after rescale   oracle %s   "
                "cache hits +%llu\n",
                level, basis.modulus_bits(), next_basis.modulus_bits(),
                ok ? "MATCH" : "MISMATCH",
                static_cast<unsigned long long>(hits_after - hits_before));
    all_ok = all_ok && hits_after > hits_before;

    ct = first;
    basis = next_basis;
  }

  const auto s = ctx.stats();
  std::printf("\nwalk complete at %ub (one limb); operand cache: %llu hits / %llu misses, "
              "%zu entries\n",
              basis.modulus_bits(), static_cast<unsigned long long>(s.operand_cache_hits),
              static_cast<unsigned long long>(s.operand_cache_misses),
              ctx.operand_cache_size());
  return all_ok ? 0 : 1;
}
