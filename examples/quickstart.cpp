// Quickstart: submit a batch of 256-point NTT jobs to the bpntt runtime,
// let the in-SRAM backend schedule them across its lanes, cross-check every
// output against the golden reference backend, and print the cycle/energy
// report — the library's whole public API in ~60 lines.
#include <cstdio>
#include <vector>

#include "bpntt/perf_model.h"
#include "common/xoshiro.h"
#include "runtime/context.h"

int main() {
  using namespace bpntt;

  // 1. Pick parameters: a 256-point negacyclic NTT over the Falcon prime on
  //    16-bit tiles (the paper's headline configuration), served by one
  //    256x256 compute subarray (plus its CTRL/CMD subarray) so the derived
  //    metrics match the paper's single-array anchor row.
  const auto opts = runtime::runtime_options()
                        .with_ring(256, 12289, 16)
                        .with_backend(runtime::backend_kind::sram)
                        .with_subarrays(2);

  // 2. Build the runtime context.  It owns the banks, derives and pre-scales
  //    the twiddle tables, compiles the command streams, and spins up the
  //    executor pool that flush() hands batches to.
  runtime::context ctx(opts);
  const auto& caps = ctx.capabilities();
  std::printf("bpntt runtime: backend '%s', %u bank(s), wave width %u jobs, %u wordlines per "
              "subarray, %u executor threads\n",
              ctx.active_backend().name().data(), caps.banks(), caps.wave_width,
              core::row_layout{opts.array.data_rows}.total_rows(), ctx.executor_threads());

  // 3. Submit one forward-NTT job per lane (one SIMD wave).
  common::xoshiro256ss rng(42);
  std::vector<runtime::job_id> ids;
  std::vector<std::vector<core::u64>> inputs(ctx.wave_width());
  for (auto& poly : inputs) {
    poly.resize(opts.params.n);
    for (auto& c : poly) c = rng.below(opts.params.q);
    ids.push_back(ctx.submit(runtime::ntt_job{.coeffs = poly}));
  }

  // 4. wait() flushes the queue: the whole batch runs in-array as one wave.
  std::vector<runtime::job_result> results;
  for (const auto id : ids) results.push_back(ctx.wait(id));
  const auto& batch = results.front();
  std::printf("forward NTT batch: %llu cycles, %.1f nJ, %llu array ops\n",
              static_cast<unsigned long long>(batch.wall_cycles),
              batch.op_stats.energy_pj * 1e-3,
              static_cast<unsigned long long>(batch.op_stats.total_array_ops()));

  // 5. Verify every output against the golden backend — same jobs, same
  //    API, reference implementation underneath.
  runtime::context golden(runtime::runtime_options(opts).with_backend(
      runtime::backend_kind::reference));
  for (const auto& poly : inputs) {
    (void)golden.submit(runtime::ntt_job{.coeffs = poly});
  }
  const auto expected = golden.wait_all();
  unsigned mismatches = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].outputs[0] != expected[i].outputs[0]) ++mismatches;
  }
  std::printf("verification: %zu/%zu jobs match the reference backend\n",
              results.size() - mismatches, results.size());

  // 6. Derived metrics (Table I quantities).
  const auto m = core::metrics_from_run(opts.array, opts.params.n, opts.params.k,
                                        ctx.wave_width(), batch.wall_cycles,
                                        batch.op_stats.energy_pj * 1e-3);
  std::printf("metrics @ %.1f GHz: latency %.1f us | throughput %.1f KNTT/s | "
              "area %.3f mm^2 | %.1f KNTT/s/mm^2 | %.1f KNTT/mJ\n",
              opts.array.tech.freq_ghz, m.latency_us, m.throughput_kntt_s, m.area_mm2,
              m.tput_per_area, m.tput_per_mj);

  return mismatches == 0 ? 0 : 1;
}
