// Quickstart: run 16 parallel 256-point NTTs on one simulated 256x256
// in-SRAM compute array, check the result against the golden transform, and
// print the cycle/energy report — the library's whole API in ~60 lines.
#include <cstdio>
#include <vector>

#include "bpntt/engine.h"
#include "bpntt/perf_model.h"
#include "common/xoshiro.h"
#include "nttmath/ntt.h"

int main() {
  using namespace bpntt;

  // 1. Pick parameters: a 256-point negacyclic NTT over the Falcon prime,
  //    on 16-bit tiles (the paper's headline configuration).
  core::engine_config cfg;  // 256x256 subarray, 45 nm technology model
  core::ntt_params params;
  params.n = 256;
  params.q = 12289;
  params.k = 16;

  // 2. Build the engine.  It derives twiddle tables, pre-scales them into
  //    the Montgomery domain, and compiles the command stream.
  core::bp_ntt_engine engine(cfg, params);
  std::printf("BP-NTT engine: %u lanes of %u-bit tiles, %u wordlines\n", engine.lanes(),
              params.k, engine.layout().total_rows());

  // 3. Load one polynomial per lane (SIMD batch).
  common::xoshiro256ss rng(42);
  std::vector<std::vector<core::u64>> inputs(engine.lanes());
  for (unsigned lane = 0; lane < engine.lanes(); ++lane) {
    inputs[lane].resize(params.n);
    for (auto& c : inputs[lane]) c = rng.below(params.q);
    engine.load_polynomial(lane, inputs[lane]);
  }

  // 4. Run the forward NTT entirely in-array.
  const auto stats = engine.run_forward();
  std::printf("forward NTT batch: %llu cycles, %.1f nJ, %llu array ops "
              "(%llu lossless-shift violations)\n",
              static_cast<unsigned long long>(stats.cycles), stats.energy_pj * 1e-3,
              static_cast<unsigned long long>(stats.total_array_ops()),
              static_cast<unsigned long long>(stats.lossless_shift_violations));

  // 5. Verify every lane against the golden CPU transform.
  unsigned mismatches = 0;
  for (unsigned lane = 0; lane < engine.lanes(); ++lane) {
    auto expected = inputs[lane];
    math::ntt_forward(expected, *engine.tables());
    if (engine.peek_polynomial(lane, params.n) != expected) ++mismatches;
  }
  std::printf("verification: %u/%u lanes match the golden NTT\n", engine.lanes() - mismatches,
              engine.lanes());

  // 6. Derived metrics (Table I quantities).
  const auto m = core::metrics_from_run(cfg, params.n, params.k, engine.lanes(), stats.cycles,
                                        stats.energy_pj * 1e-3);
  std::printf("metrics @ %.1f GHz: latency %.1f us | throughput %.1f KNTT/s | "
              "area %.3f mm^2 | %.1f KNTT/s/mm^2 | %.1f KNTT/mJ\n",
              cfg.tech.freq_ghz, m.latency_us, m.throughput_kntt_s, m.area_mm2,
              m.tput_per_area, m.tput_per_mj);

  return mismatches == 0 ? 0 : 1;
}
