// Flexibility demo (§V-E): one BP-NTT array reconfigures across the PQC and
// HE parameter sets the paper targets — different moduli, bitwidths and
// polynomial orders — with no hardware change, only a different compiled
// command stream and tile width.
//
// Sets that fit the 256-row array run on the cycle-level simulator and are
// verified against the golden NTT on every lane; larger rings (Falcon-1024,
// HE at n=1024) use the calibrated multi-tile performance model.
#include <cstdio>
#include <vector>

#include "bpntt/perf_model.h"
#include "common/table.h"
#include "common/xoshiro.h"
#include "crypto/params.h"
#include "nttmath/incomplete_ntt.h"
#include "nttmath/ntt.h"

namespace {

using bpntt::common::format_double;

bool verify_once(const bpntt::core::engine_config& cfg, const bpntt::core::ntt_params& p) {
  bpntt::core::bp_ntt_engine eng(cfg, p);
  bpntt::common::xoshiro256ss rng(99);
  std::vector<std::vector<bpntt::core::u64>> in(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    in[lane].resize(p.n);
    for (auto& c : in[lane]) c = rng.below(p.q);
    eng.load_polynomial(lane, in[lane]);
  }
  eng.run_forward();
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    auto expect = in[lane];
    if (p.incomplete) {
      bpntt::math::incomplete_ntt_forward(expect, *eng.incomplete_tables());
    } else {
      bpntt::math::ntt_forward(expect, *eng.tables());
    }
    if (eng.peek_polynomial(lane, p.n) != expect) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace bpntt;
  std::printf("=== BP-NTT flexibility: PQC and HE parameter sets on one 256x256 array ===\n\n");

  struct entry {
    crypto::param_set set;
    std::uint64_t run_n;  // ring size actually exercised (Kyber's full NTT caps at 128)
    bool incomplete = false;
    const char* note;
  };
  std::vector<entry> entries = {
      {crypto::kyber(), 256, true,
       "native Kyber: one-layer-short (incomplete) transform, q=3329"},
      {crypto::kyber(), 128, false,
       "q=3329 also supports the complete negacyclic NTT up to n=128"},
      {crypto::kyber_compat(), 256, false, "round-1 Kyber prime, full 256-point NTT"},
      {crypto::dilithium(), 256, false, ""},
      {crypto::falcon512(), 512, false, "multi-tile model"},
      {crypto::falcon1024(), 1024, false, "multi-tile model"},
      {crypto::he_level(16), 1024, false, "BKZ.qsieve HE level, multi-tile model"},
      {crypto::he_level(21), 1024, false, "multi-tile model"},
      {crypto::he_level(29), 1024, false, "multi-tile model"},
  };

  common::text_table t({"Set", "n", "q", "Tile(k)", "Lanes", "Cycles", "Lat(us)",
                        "E/NTT(nJ)", "Verified", "Source"});

  core::engine_config cfg;
  for (const auto& e : entries) {
    const unsigned k = e.set.min_tile_bits;
    core::ntt_metrics m;
    std::string verified;
    std::string source;
    if (e.run_n <= cfg.data_rows) {
      core::ntt_params p;
      p.n = e.run_n;
      p.q = e.set.q;
      p.k = k;
      p.incomplete = e.incomplete;
      m = core::measure_forward(cfg, p);
      verified = verify_once(cfg, p) ? "yes (all lanes)" : "MISMATCH";
      source = e.incomplete ? "[measured, incompl.]" : "[measured]";
    } else {
      m = core::extrapolate_forward(cfg, e.run_n, k);
      verified = "n/a";
      source = "[model]";
    }
    t.add_row({e.set.name, std::to_string(e.run_n), std::to_string(e.set.q),
               std::to_string(k), std::to_string(m.lanes), std::to_string(m.cycles),
               format_double(m.latency_us, 1), format_double(m.energy_nj / m.lanes, 2),
               verified, source});
  }
  std::printf("%s\n", t.to_string(2).c_str());

  for (const auto& e : entries) {
    if (e.note[0] != '\0') std::printf("  %-10s %s\n", e.set.name.c_str(), e.note);
  }
  std::printf("\nThe same physical array serves every row: only the tile width (decoder\n"
              "configuration) and the compiled CTRL/CMD stream change — the paper's\n"
              "flexibility claim, covering NIST PQC and the three HE security levels.\n");
  return 0;
}
