// Fig. 6 walkthrough: the paper's 3-bit worked example of in-memory
// bit-parallel modular multiplication (A=4, B=3, M=7), traced step by step
// from the software model, then executed on the SRAM simulator with the
// compiled microcode and disassembled.
#include <cstdio>
#include <string>

#include "bpntt/compiler.h"
#include "isa/executor.h"
#include "nttmath/bp_modmul_ref.h"

namespace {

std::string bits3(bpntt::math::u64 v) {
  std::string s;
  for (int i = 2; i >= 0; --i) s += ((v >> i) & 1) ? '1' : '0';
  return s;
}

}  // namespace

int main() {
  using namespace bpntt;
  constexpr math::u64 a = 4, b = 3, m = 7;
  constexpr unsigned k = 3;

  std::printf("=== Fig. 6: bit-parallel modular multiplication, A=%llu B=%llu M=%llu "
              "(R=2^%u) ===\n\n",
              static_cast<unsigned long long>(a), static_cast<unsigned long long>(b),
              static_cast<unsigned long long>(m), k);

  std::vector<math::bp_modmul_step> trace;
  const auto r = math::bp_modmul(a, b, m, k, &trace);

  std::printf("software model (Algorithm 2):\n");
  std::printf("  iter | a_i | Sum after +aB | Carry | m=M? | Sum end | Carry end\n");
  for (const auto& s : trace) {
    std::printf("   %u   |  %d  |      %s      |  %s  |  %s  |   %s   |   %s\n", s.iteration,
                s.a_bit ? 1 : 0, bits3(s.sum_after_add).c_str(),
                bits3(s.carry_after_add).c_str(), s.m_selected ? "M" : "0",
                bits3(s.sum_end).c_str(), bits3(s.carry_end).c_str());
  }
  std::printf("  output: P = %s + %s<<1 = %llu  (paper: P = 001 + 010<<1 = 5)\n\n",
              bits3(r.sum).c_str(), bits3(r.carry).c_str(),
              static_cast<unsigned long long>(r.value));

  // The same multiplication as compiled microcode on the subarray model.
  core::ntt_params p;
  p.n = 4;
  p.q = 0;
  p.k = k;
  const core::row_layout layout{8};
  const core::microcode_compiler comp(p, layout);
  core::twiddle_plan plan;
  plan.m = m;
  plan.mneg = (1ULL << k) - m;
  const auto prog = comp.compile_modmul_const(plan, /*b_row=*/0, a, /*dst_row=*/1);

  sram::subarray array(layout.total_rows(), sram::tile_geometry{12, k}, sram::tech_45nm());
  for (unsigned t = 0; t < array.geometry().num_tiles(); ++t) {
    array.host_write_word(t, layout.m_row(), m);
    array.host_write_word(t, layout.mneg_row(), (1ULL << k) - m);
    array.host_write_word(t, layout.one_row(), 1);
    array.host_write_word(t, 0, b);
  }
  isa::executor exec;
  const auto run = exec.run(prog, array);

  std::printf("in-SRAM execution: %llu array ops -> result %llu on every tile "
              "(%llu-op command stream)\n",
              static_cast<unsigned long long>(run.executed_ops),
              static_cast<unsigned long long>(array.peek_word(0, 1)),
              static_cast<unsigned long long>(prog.size()));

  std::printf("\ncompiled command stream (Fig. 4d encoding), first iteration with a_i=1:\n");
  // Iterations 0 and 1 have a_i = 0 (a = 100b); show the third iteration.
  std::size_t shown = 0;
  for (std::size_t i = 0; i < prog.ops.size() && shown < 14; ++i) {
    const std::string text = isa::disassemble(prog.ops[i]);
    if (i >= 2 + 2 * 8) {  // skip init + two m-only iterations
      std::printf("  %3zu: %-28s (0x%09llx)\n", i, text.c_str(),
                  static_cast<unsigned long long>(isa::encode(prog.ops[i])));
      ++shown;
    }
  }
  return array.peek_word(0, 1) == 5 ? 0 : 1;
}
