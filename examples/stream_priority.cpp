// Topology-aware streams: a PQC front-end serving two traffic classes on
// one chip.  A 2-channel device (2 banks per channel) hosts a
// latency-critical handshake stream (high priority, tight deadline) and a
// bulk re-encryption stream — each stream owns one channel's banks, so
// their dispatch groups genuinely overlap: the combined virtual-timeline
// makespan is far below the sum of the two streams run back-to-back.
#include <cstdio>
#include <vector>

#include "common/xoshiro.h"
#include "runtime/context.h"

int main() {
  using namespace bpntt;

  const auto opts = runtime::runtime_options()
                        .with_ring(256, 12289, 16)
                        .with_backend(runtime::backend_kind::sram)
                        .with_topology(/*channels=*/2, /*banks_per_channel=*/2,
                                       /*subarrays=*/4)
                        .with_threads(4);
  runtime::context ctx(opts);
  const auto caps = ctx.capabilities();
  std::printf("=== Two traffic classes on a %u-channel / %u-bank topology ===\n\n",
              caps.channels, caps.banks());

  // Streams are independent in-order lanes; auto placement hands each one
  // whole channel (round-robin by stream id).
  // One 12-job wave costs ~320k cycles on this topology; 400k is a
  // realistic SLO the handshake class meets when it gets its channel.
  auto handshakes = ctx.stream({.priority = 10, .deadline_cycles = 400000});
  auto bulk = ctx.stream({.priority = 0});
  const auto show = [](const char* name, const runtime::stream& s) {
    std::printf("stream %u (%s): banks {", s.id(), name);
    for (const auto b : s.bank_set()) std::printf(" %u", b);
    std::printf(" }\n");
  };
  show("handshakes", handshakes);
  show("bulk", bulk);

  common::xoshiro256ss rng(99);
  const auto random_poly = [&] {
    std::vector<core::u64> p(opts.params.n);
    for (auto& c : p) c = rng.below(opts.params.q);
    return p;
  };

  std::vector<runtime::job_id> fast_ids, bulk_ids;
  for (unsigned i = 0; i < 12; ++i) {
    fast_ids.push_back(handshakes.submit(runtime::ntt_job{.coeffs = random_poly()}));
  }
  for (unsigned i = 0; i < 48; ++i) {
    bulk_ids.push_back(bulk.submit(runtime::ntt_job{.coeffs = random_poly()}));
  }

  // Two dispatch groups, disjoint channels: they overlap on the pool.
  handshakes.flush();
  bulk.flush();
  ctx.sync();

  const auto fast = ctx.wait(fast_ids.front());
  const auto heavy = ctx.wait(bulk_ids.front());
  std::printf("\nhandshake batch : %llu cycles on stream %u, deadline %s\n",
              static_cast<unsigned long long>(fast.wall_cycles), fast.stream,
              fast.deadline_missed ? "MISSED" : "met");
  std::printf("bulk batch      : %llu cycles on stream %u\n",
              static_cast<unsigned long long>(heavy.wall_cycles), heavy.stream);

  const auto s = ctx.stats();
  std::printf("\nmakespan %llu cycles for %llu cycles of dispatched work "
              "(overlap saved %.0f%%); %llu deadline misses\n",
              static_cast<unsigned long long>(s.wall_cycles),
              static_cast<unsigned long long>(fast.wall_cycles + heavy.wall_cycles),
              100.0 * (1.0 - static_cast<double>(s.wall_cycles) /
                                 static_cast<double>(fast.wall_cycles + heavy.wall_cycles)),
              static_cast<unsigned long long>(s.deadline_misses));
  return s.wall_cycles < fast.wall_cycles + heavy.wall_cycles ? 0 : 1;
}
