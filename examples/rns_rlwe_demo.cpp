// Leveled RNS-RLWE end to end: encrypt a bit-polynomial, square it down
// the level chain, decrypt at the floor.
//
// Every square is the full homomorphic pipeline — ciphertext tensor,
// relinearization through the evaluation key over Q ∪ P (exact base
// extension up, congruence-preserving rescales back down), then the
// level's own modulus switch — and every level's decryption is checked
// against the plain GF(2) negacyclic square of the running plaintext.
//
// Two things to watch per level: the noise budget, which drops by roughly
// a limb's worth of headroom per multiply and must stay positive for the
// decryption to be exact, and the operand-cache hit counter — the
// evaluation key is fixed for the whole walk, so from the second multiply
// on its forward transforms are served from the NTT-domain cache instead
// of the array.
#include <cstdio>
#include <vector>

#include "common/xoshiro.h"
#include "crypto/rns_rlwe/rns_rlwe.h"
#include "runtime/context.h"

namespace {

constexpr unsigned kOrder = 128;
constexpr unsigned kLimbBits = 20;
constexpr unsigned kLimbs = 4;

using bpntt::crypto::rns_rlwe::u64;

std::vector<u64> negacyclic_mod2(const std::vector<u64>& a, const std::vector<u64>& b) {
  std::vector<u64> out(a.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out[(i + j) % a.size()] ^= a[i] & b[j];
  }
  return out;
}

}  // namespace

int main() {
  using namespace bpntt;

  const auto params = crypto::he_rns_rlwe_level(kLimbBits, kLimbs, kOrder);
  std::printf("=== Leveled RNS-RLWE: %s, n = %u ===\n", params.name.c_str(), kOrder);
  std::printf("ciphertext chain ΠQ: %u bits over %zu limbs, extension ΠP: %u bits over %zu\n\n",
              params.modulus_bits(), params.primes.size(), params.ks_modulus_bits(),
              params.ks_primes.size());

  // One channel per union limb: relinearization fans its products across
  // the Q and P streams at once.
  const unsigned channels = static_cast<unsigned>(params.primes.size() + params.ks_primes.size());
  auto opts = runtime::runtime_options::for_rns_param_set(params.level_set())
                  .with_backend(runtime::backend_kind::sram)
                  .with_topology(channels, 1, 4)
                  .with_threads(channels);
  runtime::context ctx(opts);
  crypto::rns_rlwe::scheme sch(ctx, params, /*seed=*/2026);

  common::xoshiro256ss rng(4);
  std::vector<u64> plain(kOrder);
  for (auto& b : plain) b = rng() & 1ULL;

  auto ct = sch.encrypt(plain);
  std::printf("fresh ciphertext: level 0, %u-bit modulus, noise budget %d bits\n",
              sch.basis_at(0).modulus_bits(), sch.noise_budget_bits(ct));

  bool all_ok = sch.decrypt(ct) == plain;
  while (ct.level + 1 < sch.levels()) {
    const auto hits_before = ctx.stats().operand_cache_hits;
    ct = sch.square(ct);
    plain = negacyclic_mod2(plain, plain);
    const auto hits_after = ctx.stats().operand_cache_hits;

    const bool ok = sch.decrypt(ct) == plain;
    all_ok = all_ok && ok;
    std::printf("square -> level %zu: %3u-bit modulus, noise budget %2d bits, "
                "round trip %s, cache hits +%llu\n",
                ct.level, sch.basis_at(ct.level).modulus_bits(), sch.noise_budget_bits(ct),
                ok ? "MATCH" : "MISMATCH",
                static_cast<unsigned long long>(hits_after - hits_before));
  }

  const auto s = ctx.stats();
  std::printf("\nwalk complete at the %u-bit floor; operand cache: %llu hits / %llu misses, "
              "%zu entries\n",
              sch.basis_at(sch.levels() - 1).modulus_bits(),
              static_cast<unsigned long long>(s.operand_cache_hits),
              static_cast<unsigned long long>(s.operand_cache_misses),
              ctx.operand_cache_size());
  return all_ok ? 0 : 1;
}
