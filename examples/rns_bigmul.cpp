// Big-modulus polynomial multiplication via RNS/CRT: the walkthrough.
//
// The bit-parallel in-SRAM multiplier runs word-sized primes; moduli wider
// than a word (FHE-scale RLWE, big-int polynomial products) decompose into
// a residue number system: one NTT-friendly prime per limb, one word-sized
// negacyclic product per limb, an exact Chinese-Remainder lift at the end.
// The runtime places each limb on its own stream — on this 3-channel
// topology each limb owns a channel, so the three limb dispatch groups
// overlap and the makespan tracks the slowest limb, not the sum.
#include <cstdio>
#include <vector>

#include "common/xoshiro.h"
#include "rns/rns_engine.h"
#include "runtime/context.h"

int main() {
  using namespace bpntt;
  using math::wide_uint;

  // A 3-limb basis of 14-bit primes for a 128-point ring: ~42-bit modulus,
  // far beyond one 14-bit tile, from three word-sized channels.
  const unsigned n = 128;
  const auto basis = rns::rns_basis::with_limb_bits(n, /*limb_bits=*/14, /*limbs=*/3);
  std::printf("=== RNS big-modulus polymul: %zu limbs -> %u-bit modulus ===\n\n",
              basis.limbs(), basis.modulus_bits());
  std::printf("limb primes:");
  for (const auto q : basis.primes()) std::printf(" %llu", static_cast<unsigned long long>(q));
  std::printf("\nM = 0x%s\n\n", basis.modulus().to_hex().c_str());

  // One channel per limb; the limb streams land there round-robin.
  const auto opts = runtime::runtime_options()
                        .with_ring(n, basis.prime(0), /*k=*/15)
                        .with_backend(runtime::backend_kind::sram)
                        .with_topology(/*channels=*/3, /*banks_per_channel=*/1, /*subarrays=*/4)
                        .with_threads(3);
  runtime::context ctx(opts);
  rns::rns_engine eng(ctx, basis);
  for (std::size_t i = 0; i < basis.limbs(); ++i) {
    auto s = ctx.rns_stream(basis.prime(i));
    std::printf("limb %zu (q=%llu) -> stream %u, banks {", i,
                static_cast<unsigned long long>(basis.prime(i)), s.id());
    for (const auto b : s.bank_set()) std::printf(" %u", b);
    std::printf(" }\n");
  }

  // Random canonical big coefficients (reduced mod M via wide divmod).
  common::xoshiro256ss rng(7);
  const auto random_poly = [&] {
    std::vector<wide_uint> p;
    p.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      wide_uint c(basis.wide_bits());
      for (unsigned bit = 0; bit < basis.modulus_bits(); ++bit) c.set_bit(bit, rng() & 1ULL);
      p.push_back(c.divmod(basis.modulus()).rem);
    }
    return p;
  };
  const auto a = random_poly();
  const auto b = random_poly();
  std::printf("\na[0] = 0x%s\nb[0] = 0x%s\n", a[0].to_hex().c_str(), b[0].to_hex().c_str());
  const auto residues = rns::rns_decompose({a.data(), 1}, basis);
  std::printf("a[0] residues:");
  for (std::size_t i = 0; i < basis.limbs(); ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(residues.residues[i][0]));
  }
  std::printf("   (a[0] mod q_i)\n");

  // The product: decompose -> one polymul job per limb -> CRT lift.
  const auto before = ctx.stats();
  const auto c = eng.polymul(a, b);
  const auto after = ctx.stats();
  std::printf("\nc[0] = 0x%s\n", c[0].to_hex().c_str());

  const auto expect = rns::schoolbook_negacyclic_wide(a, b, basis.modulus());
  bool ok = true;
  for (unsigned i = 0; i < n; ++i) ok = ok && c[i] == expect[i];
  std::printf("schoolbook oracle: %s\n", ok ? "MATCH (all coefficients)" : "MISMATCH");

  const auto serial = eng.last_fanout().serial_cycles;
  const auto makespan = after.wall_cycles - before.wall_cycles;
  std::printf("\n%llu limb jobs: serial sum %llu cycles, overlapped makespan %llu cycles "
              "(saved %.0f%%)\n",
              static_cast<unsigned long long>(eng.last_fanout().limb_jobs),
              static_cast<unsigned long long>(serial),
              static_cast<unsigned long long>(makespan),
              serial == 0 ? 0.0 : 100.0 * (1.0 - static_cast<double>(makespan) / serial));
  return ok && makespan < serial ? 0 : 1;
}
