// R-LWE public-key encryption with every ring product computed on the
// in-SRAM BP-NTT engine — the end-to-end workload the paper motivates
// (lattice-based crypto on resource-constrained edge devices, with
// plaintext never leaving the chip).
//
// The runtime executes each rlwe_encrypt_job entirely through its backend:
// keygen, encrypt and a decrypt round-trip, with every polynomial product
// running the full in-array pipeline (NTT(a) and NTT(b) at two row regions,
// in-array pointwise multiply, inverse NTT).  Determinism from the job seed
// lets the same jobs re-run on the reference backend for a bit-exactness
// cross-check.
#include <cstdio>
#include <vector>

#include "common/xoshiro.h"
#include "crypto/sampler.h"
#include "runtime/context.h"

int main() {
  using namespace bpntt;

  // Falcon-512's ring (n=512) exceeds one 256-row array, so this demo uses
  // a 128-point ring over the Kyber prime — the paper's Fig. 7 workload
  // size — with 13-bit tiles: a[0..128) and b[128..256) row regions.
  const auto opts = runtime::runtime_options()
                        .with_ring(128, 3329, 13)
                        .with_backend(runtime::backend_kind::sram);
  runtime::context ctx(opts);

  std::printf("=== R-LWE encrypt/decrypt on the BP-NTT runtime (n=%llu, q=%llu) ===\n\n",
              static_cast<unsigned long long>(opts.params.n),
              static_cast<unsigned long long>(opts.params.q));

  common::xoshiro256ss rng(2024);
  std::vector<runtime::job_id> ids;
  std::vector<std::vector<core::u64>> messages;
  for (int trial = 0; trial < 4; ++trial) {
    messages.push_back(crypto::sample_message(opts.params.n, rng));
    ids.push_back(ctx.submit(runtime::rlwe_encrypt_job{
        .message = messages.back(), .eta = 2, .seed = 9000 + static_cast<core::u64>(trial)}));
  }

  // Each job's outputs are {ciphertext u, ciphertext v, decrypted message}.
  // All four flows flush together, so the scheduler batches them stage by
  // stage: every keygen product in one dispatch, every encryption product
  // in one, every decryption product in one — each job_result carries the
  // shared group accounting (jobs_in_batch tells how many flows rode it).
  unsigned ok = 0;
  sram::op_stats accel_stats;
  for (std::size_t trial = 0; trial < ids.size(); ++trial) {
    const auto r = ctx.wait(ids[trial]);
    const bool match = r.outputs[2] == messages[trial];
    ok += match;
    if (trial == 0) accel_stats = r.op_stats;  // group stats, counted once
    std::printf("trial %zu: %llu message bits -> %s (rode a %zu-job staged batch)\n", trial,
                static_cast<unsigned long long>(opts.params.n),
                match ? "decrypted exactly" : "DECRYPTION FAILED", r.jobs_in_batch);
  }

  // Cross-check: the same seeded jobs on the golden backend must produce
  // bit-identical ciphertexts — the in-SRAM products are exact.
  runtime::context golden(
      runtime::runtime_options(opts).with_backend(runtime::backend_kind::reference));
  bool bit_exact = true;
  for (std::size_t trial = 0; trial < messages.size(); ++trial) {
    const auto id = golden.submit(runtime::rlwe_encrypt_job{
        .message = messages[trial], .eta = 2, .seed = 9000 + static_cast<core::u64>(trial)});
    const auto want = golden.wait(id);
    const auto again = ctx.submit(runtime::rlwe_encrypt_job{
        .message = messages[trial], .eta = 2, .seed = 9000 + static_cast<core::u64>(trial)});
    const auto got = ctx.wait(again);
    bit_exact = bit_exact && got.outputs[0] == want.outputs[0] && got.outputs[1] == want.outputs[1];
  }
  std::printf("\nin-SRAM ciphertexts vs reference backend: %s\n",
              bit_exact ? "bit-exact" : "MISMATCH");

  // Four ring products per job: keygen's a*s, the two encryption products
  // and the decryption product — batched into three staged dispatches for
  // the whole job group.
  const double freq_ghz = opts.array.tech.freq_ghz;
  std::printf("\naccelerator totals over %zu ring products (3 staged dispatches): "
              "%llu cycles, %.1f nJ (%.1f us at %.1f GHz)\n",
              4 * ids.size(), static_cast<unsigned long long>(accel_stats.cycles),
              accel_stats.energy_pj * 1e-3, accel_stats.cycles / (freq_ghz * 1e3), freq_ghz);
  std::printf("plaintext polynomials never left the subarray in plain form — the trusted\n"
              "computing base stays on-chip (§I).\n");

  return (ok == ids.size() && bit_exact) ? 0 : 1;
}
