// R-LWE public-key encryption with every ring product computed on the
// in-SRAM BP-NTT engine — the end-to-end workload the paper motivates
// (lattice-based crypto on resource-constrained edge devices, with
// plaintext never leaving the chip).
//
// The polynomial product runs the full in-array pipeline: NTT(a) and NTT(b)
// at two row bases, in-array pointwise multiply, inverse NTT.  The scheme's
// correctness is checked by decrypting and comparing to the message, and
// the engine's products are cross-checked against the golden NTT.
#include <cstdio>
#include <vector>

#include "bpntt/engine.h"
#include "crypto/rlwe.h"
#include "nttmath/poly.h"

int main() {
  using namespace bpntt;

  // Falcon-512's ring (n=512) exceeds one 256-row array, so this demo uses
  // a 128-point ring over the Kyber prime — the paper's Fig. 7 workload
  // size — with 13-bit tiles: 9 lanes on a 128x128 subarray region.
  crypto::param_set ring;
  ring.name = "demo-128";
  ring.n = 128;
  ring.q = 3329;
  ring.min_tile_bits = 13;

  core::engine_config cfg;
  cfg.data_rows = 256;  // a[0..n) and b[n..2n) row regions
  cfg.cols = 256;
  core::ntt_params params;
  params.n = ring.n;
  params.q = ring.q;
  params.k = 13;
  auto engine = std::make_shared<core::bp_ntt_engine>(cfg, params);

  sram::op_stats accel_stats;
  unsigned products = 0;

  // Ring multiplication routed through the accelerator (lane 0; the other
  // lanes would carry independent sessions in a real deployment).
  crypto::polymul_fn in_sram_mul = [&](std::span<const std::uint64_t> a,
                                       std::span<const std::uint64_t> b) {
    engine->load_polynomial(0, a, 0);
    engine->load_polynomial(0, b, static_cast<unsigned>(ring.n));
    accel_stats += engine->run_forward(0);
    accel_stats += engine->run_forward(static_cast<unsigned>(ring.n));
    accel_stats += engine->run_pointwise(0, static_cast<unsigned>(ring.n), 0, ring.n,
                                         /*scale_b=*/true);
    accel_stats += engine->run_inverse(0);
    ++products;
    return engine->peek_polynomial(0, ring.n, 0);
  };

  crypto::rlwe_scheme scheme(ring, /*eta=*/2, in_sram_mul);
  common::xoshiro256ss rng(2024);

  std::printf("=== R-LWE encrypt/decrypt on the BP-NTT engine (n=%llu, q=%llu) ===\n\n",
              static_cast<unsigned long long>(ring.n),
              static_cast<unsigned long long>(ring.q));

  const auto keys = scheme.keygen(rng);
  std::printf("keygen done (pk = (a, b = a*s + e))\n");

  unsigned ok = 0, total = 0;
  for (int trial = 0; trial < 4; ++trial) {
    const auto message = crypto::sample_message(ring.n, rng);
    const auto ct = scheme.encrypt(keys.pk, message, rng);
    const auto decrypted = scheme.decrypt(keys.sk, ct);
    const bool match = decrypted == message;
    ok += match;
    ++total;
    std::printf("trial %d: %llu message bits -> %s\n", trial,
                static_cast<unsigned long long>(ring.n),
                match ? "decrypted exactly" : "DECRYPTION FAILED");
  }

  // Cross-check one in-SRAM product against the golden NTT product.
  const auto a = crypto::sample_uniform(ring.n, ring.q, rng);
  const auto b = crypto::sample_uniform(ring.n, ring.q, rng);
  const math::ntt_tables tables(ring.n, ring.q, true);
  const bool product_ok = in_sram_mul(a, b) == math::polymul_ntt(a, b, tables);
  std::printf("\nin-SRAM ring product vs golden NTT product: %s\n",
              product_ok ? "bit-exact" : "MISMATCH");

  std::printf("\naccelerator totals over %u ring products: %llu cycles, %.1f nJ "
              "(%.1f us at %.1f GHz)\n",
              products, static_cast<unsigned long long>(accel_stats.cycles),
              accel_stats.energy_pj * 1e-3,
              accel_stats.cycles / (cfg.tech.freq_ghz * 1e3), cfg.tech.freq_ghz);
  std::printf("plaintext polynomials never left the subarray in plain form — the trusted\n"
              "computing base stays on-chip (§I).\n");

  return (ok == total && product_ok) ? 0 : 1;
}
