#!/usr/bin/env python3
"""Perf-trend gate for the bench JSON artifacts.

Every gated metric is cycle-derived from the SRAM model's virtual timeline,
so it is deterministic and host-independent:

  * BENCH_table1.json     — measured in-SRAM rows, latency_us per row
  * BENCH_rns_bigmul.json — RNS limb sweep, makespan_cycles per limb count
  * BENCH_rescale.json    — rescale limb sweep, cold/warm cycles per limb count
  * BENCH_rns_rlwe.json   — leveled RLWE sweep, warm-key multiply cycles

Each current value is compared against two references: the committed
baseline (bench/baselines/, updated deliberately when a change is supposed
to shift cycles) and the previous successful run's artifact.  A metric
fails the job only on a SUSTAINED regression — more than the threshold
past the committed baseline AND past the previous run, i.e. regressed
twice in a row.  One noisy or deliberately-rebaselined run therefore
warns; a regression that persists across two runs fails.

BENCH_soak.json wall-clock metrics (throughput, latency quantiles) measure
the host, not the model: they are always advisory.  The soak's own
correctness gates (lost/duplicated results, EDF-beats-FIFO) are enforced
by the bench binary's exit code, not here.

With --report <path>, the same comparison is also rendered as a Markdown
trend report (one table per bench file: baseline, previous run, current,
delta, verdict) for upload as a CI artifact.  The report is purely a view
of the artifact history — it never changes what gates.

Usage: perf_trend.py --baseline <dir> --current <dir> [--previous <dir>]
                     [--report <path>]
"""
import argparse
import json
import os
import sys

THRESHOLD = 0.10  # fail past +10%, sustained


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def table1_metrics(doc):
    """name -> latency_us for the measured in-SRAM rows (latency is cycles
    at the model's fixed array clock, so a latency ratio is a cycle ratio)."""
    rows = {}
    for row in doc.get("rows", []):
        if row.get("measured") and row.get("technology") == "In-SRAM":
            latency = row.get("latency_us")
            if isinstance(latency, (int, float)) and latency > 0:
                rows[row.get("name", "?")] = float(latency)
    return rows


def rns_metrics(doc):
    rows = {}
    for row in doc.get("rows", []):
        makespan = row.get("makespan_cycles")
        limbs = row.get("limbs")
        if isinstance(makespan, (int, float)) and makespan > 0 and limbs is not None:
            rows[f"{limbs} limbs"] = float(makespan)
    return rows


def rescale_metrics(doc):
    """Cold and warm makespans per limb count.  The warm repeat is the
    residency path — same operands, transforms served from device-resident
    rows — so gating it catches placement or eviction regressions that the
    cold path cannot see."""
    rows = {}
    for row in doc.get("rows", []):
        limbs = row.get("limbs")
        if limbs is None:
            continue
        for key, label in (("cold_cycles", "cold"), ("warm_cycles", "warm")):
            val = row.get(key)
            if isinstance(val, (int, float)) and val > 0:
                rows[f"{limbs} limbs {label}"] = float(val)
    return rows


def residency_metrics(doc):
    """Advisory view of the on-array residency counters the benches embed:
    the device-row high-water mark and the scheduler's residency-affinity
    claims.  These shift legitimately whenever placement policy changes, so
    they inform the trend report without gating."""
    rows = {}
    for row in doc.get("rows", []):
        limbs = row.get("limbs")
        if limbs is None:
            continue
        for key, label in (("resident_rows_peak", "rows peak"),
                           ("affinity_hits", "affinity hits")):
            val = row.get(key)
            if isinstance(val, (int, float)) and val > 0:
                rows[f"{limbs} limbs {label}"] = float(val)
    return rows


def rns_rlwe_metrics(doc):
    """Warm-key relinearization cost per chain length: the fixed-evk repeat
    multiply is the steady-state leveled workload, so its cycle count is
    what the operand cache is supposed to keep down."""
    rows = {}
    for row in doc.get("rows", []):
        warm = row.get("warm_cycles")
        limbs = row.get("limbs")
        if isinstance(warm, (int, float)) and warm > 0 and limbs is not None:
            rows[f"{limbs} limbs warm"] = float(warm)
    return rows


def soak_metrics(doc):
    """Advisory view of the service-layer soak: wall-clock totals plus the
    deterministic merge-trace makespans (the strict merged-beats-unmerged
    inequality itself is enforced by the bench binary's exit code)."""
    totals = doc.get("totals", {})
    rows = {}
    for key in ("throughput_jobs_per_s", "p99_ns"):
        val = totals.get(key)
        if isinstance(val, (int, float)) and val > 0:
            rows[key] = float(val)
    merge = doc.get("merge_trace", {})
    for key in ("unmerged_makespan_cycles", "merged_makespan_cycles"):
        val = merge.get(key)
        if isinstance(val, (int, float)) and val > 0:
            rows[key] = float(val)
    # Queue-wait quantiles from the embedded metrics registry ("metrics" is
    # the service's registry to_json()): the ring + drainer share of
    # end-to-end latency.  Wall-clock, host-dependent — advisory only.
    queue_wait = doc.get("metrics", {}).get("histograms", {}).get(
        "service.queue_wait_ns", {})
    for key in ("p50_ns", "p95_ns"):
        val = queue_wait.get(key)
        if isinstance(val, (int, float)) and val > 0:
            rows[f"queue_wait_{key}"] = float(val)
    return rows


GATED = [
    ("sram table1", "BENCH_table1.json", table1_metrics, "us"),
    ("rns bigmul", "BENCH_rns_bigmul.json", rns_metrics, "cyc"),
    ("rns rescale", "BENCH_rescale.json", rescale_metrics, "cyc"),
    ("rns rlwe", "BENCH_rns_rlwe.json", rns_rlwe_metrics, "cyc"),
]
ADVISORY = [
    ("service soak", "BENCH_soak.json", soak_metrics, ""),
    ("rescale residency", "BENCH_rescale.json", residency_metrics, ""),
    ("rlwe residency", "BENCH_rns_rlwe.json", residency_metrics, ""),
]


def ratio(cur, ref):
    return cur / ref - 1.0


def check_file(label, extract, unit, base_doc, prev_doc, cur_doc, gating,
               report_rows=None):
    """Compare one bench file; return the number of sustained regressions.

    When report_rows is a list, every compared metric also appends a row
    dict for the Markdown report (reporting only — gating is unaffected).
    """
    def record(name, base_val, prev_val, cur_val, verdict):
        if report_rows is not None:
            report_rows.append({
                "label": label, "gating": gating, "unit": unit, "name": name,
                "baseline": base_val, "previous": prev_val, "current": cur_val,
                "verdict": verdict,
            })

    if cur_doc is None:
        print(f"::warning title=perf-trend::{label}: current bench JSON missing/unreadable")
        return 0
    cur = extract(cur_doc)
    base = extract(base_doc) if base_doc is not None else {}
    prev = extract(prev_doc) if prev_doc is not None else {}
    if not base:
        print(f"perf-trend[{label}]: no committed baseline rows; skipping")
        for name, cur_val in sorted(cur.items()):
            record(name, None, prev.get(name), cur_val, "no baseline")
        return 0

    sustained = 0
    for name, cur_val in sorted(cur.items()):
        base_val = base.get(name)
        if base_val is None:
            print(f"perf-trend[{label}]: new row '{name}' ({cur_val:.4g} {unit}), "
                  "no baseline — commit one in bench/baselines/")
            record(name, None, prev.get(name), cur_val, "new row")
            continue
        d_base = ratio(cur_val, base_val)
        line = (f"perf-trend[{label}]: {name}: baseline {base_val:.4g} -> "
                f"{cur_val:.4g} {unit} ({d_base:+.1%})")
        # "Twice in a row" means the PREVIOUS run was also past the
        # committed baseline — not that current moved vs previous (a
        # persisting regression is flat run-to-run).
        prev_val = prev.get(name)
        if prev_val is not None:
            d_prev = ratio(prev_val, base_val)
            line += f", prev run {prev_val:.4g} ({d_prev:+.1%} vs baseline)"
        else:
            d_prev = None
        regressed_base = d_base > THRESHOLD
        regressed_prev = d_prev is not None and d_prev > THRESHOLD

        if not gating:
            print(line + (" [advisory]" if regressed_base else ""))
            record(name, base_val, prev_val, cur_val,
                   "advisory" if regressed_base else "ok")
            continue
        if regressed_base and regressed_prev:
            sustained += 1
            print(line + " SUSTAINED REGRESSION")
            print(f"::error title={label} sustained cycle regression::{name}: "
                  f"{cur_val:.4g} {unit} is {d_base:+.1%} past the committed baseline, "
                  f"and the previous run was already {d_prev:+.1%} past it (threshold "
                  f"+{THRESHOLD:.0%} twice in a row). Fix the regression or "
                  "deliberately update bench/baselines/.")
            record(name, base_val, prev_val, cur_val, "SUSTAINED REGRESSION")
        elif regressed_base:
            print(line + " regressed vs baseline (first occurrence — warning)")
            print(f"::warning title={label} cycle regression::{name}: "
                  f"{cur_val:.4g} {unit} is {d_base:+.1%} past the committed baseline; "
                  "fails the next run if it persists.")
            record(name, base_val, prev_val, cur_val, "regressed (warning)")
        else:
            print(line + " ok")
            record(name, base_val, prev_val, cur_val, "ok")
    return sustained


def fmt_val(val, unit):
    if val is None:
        return "—"
    suffix = f" {unit}" if unit else ""
    return f"{val:.4g}{suffix}"


def write_report(path, report_rows, failures):
    """Render the collected comparison rows as a Markdown trend report."""
    lines = ["# Perf trend report", ""]
    lines.append("Cycle-derived metrics vs the committed baseline "
                 "(`bench/baselines/`) and the previous successful run's "
                 f"artifact. Gating threshold: +{THRESHOLD:.0%} past baseline, "
                 "sustained over two consecutive runs.")
    lines.append("")
    verdict = (f"**{failures} sustained regression(s) — job failed.**"
               if failures else "**No sustained regressions.**")
    lines.append(verdict)

    by_label = {}
    for row in report_rows:
        by_label.setdefault(row["label"], []).append(row)
    for label, rows in by_label.items():
        kind = "gated" if rows[0]["gating"] else "advisory"
        lines += ["", f"## {label} ({kind})", "",
                  "| metric | baseline | previous run | current | Δ vs baseline | verdict |",
                  "|---|---|---|---|---|---|"]
        for r in rows:
            delta = ("—" if r["baseline"] is None
                     else f"{ratio(r['current'], r['baseline']):+.1%}")
            lines.append(
                f"| {r['name']} | {fmt_val(r['baseline'], r['unit'])} "
                f"| {fmt_val(r['previous'], r['unit'])} "
                f"| {fmt_val(r['current'], r['unit'])} | {delta} | {r['verdict']} |")
    if not report_rows:
        lines += ["", "No bench rows were available to compare."]
    lines.append("")
    with open(path, "w") as f:
        f.write("\n".join(lines))
    print(f"perf-trend: wrote Markdown report to {path}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True, help="committed baseline dir")
    ap.add_argument("--current", required=True, help="dir with this run's bench JSONs")
    ap.add_argument("--previous", default=None,
                    help="dir with the previous run's artifacts (optional)")
    ap.add_argument("--report", default=None,
                    help="also write a Markdown trend report to this path")
    args = ap.parse_args()

    failures = 0
    report_rows = [] if args.report else None
    for gating, group in ((True, GATED), (False, ADVISORY)):
        for label, fname, extract, unit in group:
            base_doc = load(os.path.join(args.baseline, fname))
            cur_doc = load(os.path.join(args.current, fname))
            prev_doc = load(os.path.join(args.previous, fname)) if args.previous else None
            failures += check_file(label, extract, unit, base_doc, prev_doc, cur_doc,
                                   gating, report_rows)

    if args.report:
        write_report(args.report, report_rows, failures)
    if failures:
        print(f"perf-trend: {failures} sustained regression(s) — failing the job")
        return 1
    print("perf-trend: no sustained regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
