#!/usr/bin/env python3
"""Advisory perf-trend check for the bench JSON artifacts.

Compares the current run's measured rows against the previous successful
run's artifacts and emits GitHub warning annotations when a cycle-derived
metric regresses by more than the threshold:

  * BENCH_table1.json     — measured in-SRAM rows, latency_us per row
  * BENCH_rns_bigmul.json — RNS limb sweep, makespan_cycles per limb count

Strictly non-fatal: every path — missing previous artifact, schema drift,
genuine regression — exits 0; the signal is the annotation, not the job
status.

Usage: perf_trend.py <previous_table1.json> <current_table1.json>
                     [<previous_rns_bigmul.json> <current_rns_bigmul.json>]
"""
import json
import sys

THRESHOLD = 0.10  # warn past +10%


def load(path, required):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        if required:
            print(f"::warning::perf-trend: current bench JSON unreadable ({e})")
        else:
            print(f"perf-trend: no usable previous artifact ({e}); skipping comparison")
        return None


def sram_rows(doc):
    """name -> latency_us for the measured in-SRAM rows (latency is cycles
    at the model's fixed array clock, so a latency ratio is a cycle ratio)."""
    rows = {}
    for row in doc.get("rows", []):
        if row.get("measured") and row.get("technology") == "In-SRAM":
            latency = row.get("latency_us")
            if isinstance(latency, (int, float)) and latency > 0:
                rows[row.get("name", "?")] = float(latency)
    return rows


def rns_rows(doc):
    """'N limbs' -> makespan_cycles for the RNS big-modulus limb sweep."""
    rows = {}
    for row in doc.get("rows", []):
        makespan = row.get("makespan_cycles")
        limbs = row.get("limbs")
        if isinstance(makespan, (int, float)) and makespan > 0 and limbs is not None:
            rows[f"{limbs} limbs"] = float(makespan)
    return rows


def compare(label, unit, prev_rows, cur_rows):
    """Print the per-row trend, emitting a warning annotation per regression."""
    if not prev_rows or not cur_rows:
        print(f"perf-trend[{label}]: no comparable rows; skipping")
        return
    regressions = 0
    for name, cur in sorted(cur_rows.items()):
        prev = prev_rows.get(name)
        if prev is None:
            print(f"perf-trend[{label}]: new row '{name}' ({cur:.4g} {unit}), no baseline")
            continue
        delta = cur / prev - 1.0
        verdict = "regressed" if delta > THRESHOLD else "ok"
        print(f"perf-trend[{label}]: {name}: {prev:.4g} -> {cur:.4g} {unit} "
              f"({delta:+.1%}) {verdict}")
        if delta > THRESHOLD:
            regressions += 1
            print(f"::warning title={label} cycle regression::{name}: "
                  f"{prev:.4g} {unit} -> {cur:.4g} {unit} ({delta:+.1%}, threshold "
                  f"+{THRESHOLD:.0%}) vs the previous run's artifact")
    if regressions == 0:
        print(f"perf-trend[{label}]: all rows within threshold")


def main():
    if len(sys.argv) not in (3, 5):
        print("usage: perf_trend.py <previous_table1> <current_table1> "
              "[<previous_rns_bigmul> <current_rns_bigmul>]")
        return 0

    prev = load(sys.argv[1], required=False)
    cur = load(sys.argv[2], required=True)
    if prev is not None and cur is not None:
        compare("sram table1", "us", sram_rows(prev), sram_rows(cur))

    if len(sys.argv) == 5:
        prev_rns = load(sys.argv[3], required=False)
        cur_rns = load(sys.argv[4], required=True)
        if prev_rns is not None and cur_rns is not None:
            compare("rns bigmul", "cyc", rns_rows(prev_rns), rns_rows(cur_rns))
    return 0  # advisory by design


if __name__ == "__main__":
    sys.exit(main())
