#!/usr/bin/env python3
"""Advisory perf-trend check for the BENCH_table1.json artifact.

Compares the current run's measured in-SRAM rows against the previous
successful run's artifact and emits GitHub warning annotations when the
cycle-derived latency regresses by more than the threshold.  Strictly
non-fatal: every path — missing previous artifact, schema drift, genuine
regression — exits 0; the signal is the annotation, not the job status.

Usage: perf_trend.py <previous.json> <current.json>
"""
import json
import sys

THRESHOLD = 0.10  # warn past +10%


def sram_rows(doc):
    """name -> latency_us for the measured in-SRAM rows (latency is cycles
    at the model's fixed array clock, so a latency ratio is a cycle ratio)."""
    rows = {}
    for row in doc.get("rows", []):
        if row.get("measured") and row.get("technology") == "In-SRAM":
            latency = row.get("latency_us")
            if isinstance(latency, (int, float)) and latency > 0:
                rows[row.get("name", "?")] = float(latency)
    return rows


def main():
    if len(sys.argv) != 3:
        print("usage: perf_trend.py <previous.json> <current.json>")
        return 0
    try:
        with open(sys.argv[1]) as f:
            prev = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf-trend: no usable previous artifact ({e}); skipping comparison")
        return 0
    try:
        with open(sys.argv[2]) as f:
            cur = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::perf-trend: current bench JSON unreadable ({e})")
        return 0

    prev_rows, cur_rows = sram_rows(prev), sram_rows(cur)
    if not prev_rows or not cur_rows:
        print("perf-trend: no measured in-SRAM rows to compare; skipping")
        return 0

    regressions = 0
    for name, cur_lat in sorted(cur_rows.items()):
        prev_lat = prev_rows.get(name)
        if prev_lat is None:
            print(f"perf-trend: new row '{name}' ({cur_lat:.3g} us), no baseline")
            continue
        delta = cur_lat / prev_lat - 1.0
        verdict = "regressed" if delta > THRESHOLD else "ok"
        print(f"perf-trend: {name}: {prev_lat:.4g} -> {cur_lat:.4g} us "
              f"({delta:+.1%}) {verdict}")
        if delta > THRESHOLD:
            regressions += 1
            print(f"::warning title=sram cycle regression::{name}: in-SRAM latency "
                  f"{prev_lat:.4g} us -> {cur_lat:.4g} us ({delta:+.1%}, threshold "
                  f"+{THRESHOLD:.0%}) vs the previous run's BENCH_table1.json")
    if regressions == 0:
        print("perf-trend: all measured in-SRAM rows within threshold")
    return 0  # advisory by design


if __name__ == "__main__":
    sys.exit(main())
